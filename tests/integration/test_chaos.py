"""Chaos suite: seeded fault storms over the serving stack (DESIGN.md §9).

Every test here installs a :class:`repro.faults.FaultPlane` and asserts the
fault-domain contract end to end:

* **Availability.** Under a single-shard storm, requests keep succeeding —
  retried to a full answer or degraded to an explicitly partial one.
* **Soundness.** A non-degraded response is bit-identical to the sequential
  oracle; a degraded one reports its shard coverage and a ``score_bound``
  that dominates every score the answer could possibly be missing.
* **Cleanliness.** No storm leaks an epoch pin, poisons the cache with a
  partial answer, or leaves a breaker wedged after the fault clears.

Storms are seeded, breaker clocks are hand-stepped and retry sleeps are
no-ops, so every test is fast and replays exactly.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import faults
from repro.baselines.sequential import SequentialScan
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.faults import FaultPlane, FaultRule, InjectedFault
from repro.serving.breaker import ResiliencePolicy, RetryPolicy
from repro.serving.cache import ResultCache
from repro.serving.coalescer import TickCoalescer

pytestmark = pytest.mark.chaos

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4
NUM_SHARDS = 4


class FakeClock:
    def __init__(self, start: float = 50.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class SteppingClock:
    """Advances a fixed step on every read: deadlines expire mid-serve."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = float(step)

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _dataset(seed: int = 42, rows: int = 240):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, size=(rows, NUM_DIMS))


def _engine(data, policy=None, **kwargs):
    return ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=NUM_SHARDS,
        resilience=policy,
        **kwargs,
    )


def _policy(**overrides):
    """A fast deterministic policy: zero-jitter retries, no real sleeping."""
    defaults = dict(
        retry=RetryPolicy(max_attempts=3, jitter=0.0, base_backoff=0.0),
        failure_threshold=5,
        reset_timeout=1.0,
        degrade=True,
        sleep=lambda _s: None,
    )
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


def _queries(seed: int, count: int, k: int = 5):
    rng = np.random.default_rng(seed)
    return [
        SDQuery.simple(
            point=rng.uniform(0, 1, size=NUM_DIMS),
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            k=k,
            alpha=rng.uniform(0.1, 1.0, size=2),
            beta=rng.uniform(0.1, 1.0, size=2),
        )
        for _ in range(count)
    ]


def _score_table(data, query, row_ids=None):
    """Every live row's exact score for ``query``, as ``{row: score}``."""
    oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE, row_ids=row_ids)
    full = oracle.query(query.with_k(len(data)))
    return dict(zip(full.row_ids, full.scores))


def _assert_sound(result, query, data, row_ids=None) -> None:
    """The degraded-response contract (DESIGN.md §9).

    Returned scores are exact, and every oracle top-k row the answer is
    missing scores no better than the reported conservative bound.
    """
    assert result.degraded
    coverage = result.coverage
    assert coverage is not None
    assert coverage.skipped
    assert 0.0 <= coverage.covered_fraction < 1.0
    table = _score_table(data, query, row_ids=row_ids)
    for match in result.matches:
        assert table[match.row_id] == match.score  # exact, never fabricated
    top = sorted(table.items(), key=lambda item: (-item[1], item[0]))
    returned = set(result.row_ids)
    for row, score in top[: query.k]:
        if row not in returned:
            assert score <= coverage.score_bound + 1e-12, (
                f"missing row {row} scores {score} above the reported "
                f"bound {coverage.score_bound}"
            )


def _assert_drained(engine: ShardedIndex) -> None:
    topology = engine._topology.leak_report()
    assert topology["pinned_readers"] == 0
    for shard in engine._shards:
        report = shard.serving_session().epochs.leak_report()
        assert report["pinned_readers"] == 0, report


# ------------------------------------------------------------- probe storms
class TestShardProbeStorms:
    def test_full_storm_on_one_shard_degrades_soundly(self):
        """Shard 1 hard down ("shard.probe" raises every time): every answer
        is explicitly partial, covers the other shards, and bounds the gap."""
        data = _dataset()
        clock = FakeClock()
        engine = _engine(data, _policy(failure_threshold=3, clock=clock))
        queries = _queries(seed=1, count=8)
        plane = FaultPlane([FaultRule("shard.probe", key=1)], seed=7)
        try:
            with faults.fault_plane(plane):
                for query in queries:
                    result = engine.query(query)
                    _assert_sound(result, query, data)
                    assert {s for s, _ in result.coverage.skipped} == {1}
                    assert result.coverage.probed == (0, 2, 3)
            stats = engine.breaker_stats()
            assert stats[1]["state"] == "open"
            assert all(stats[s]["state"] == "closed" for s in (0, 2, 3))
            reasons = {r for _, r in result.coverage.skipped}
            assert reasons <= {"fault", "breaker_open"}
            # Storm over, breaker reset elapsed: bit-identical serving resumes.
            clock.advance(1.5)
            for query in queries:
                healed = engine.query(query)
                assert not healed.degraded
                expect = SequentialScan(data, REPULSIVE, ATTRACTIVE).query(query)
                assert healed.row_ids == expect.row_ids
                assert healed.scores == expect.scores
            assert engine.breaker_stats()[1]["state"] == "closed"
            _assert_drained(engine)
        finally:
            engine.close()

    def test_degraded_score_bound_sound_with_tightened_bounds(self):
        """``ShardCoverage.score_bound`` stays sound under PR 10's tightened
        per-shard upper bounds, including at ~1e10 coordinate magnitudes
        where the ``_MAGNITUDE_SLACK`` term dominates float rounding.  The
        bound comes straight from the skipped shard's (now much tighter)
        leaf bounds — tighter must never mean "below a missing row's true
        score"."""
        for scale in (1.0, 1e10):
            data = _dataset(seed=21) * scale
            clock = FakeClock()
            engine = _engine(data, _policy(failure_threshold=3, clock=clock))
            rng = np.random.default_rng(3)
            queries = [
                SDQuery.simple(
                    point=rng.uniform(0, scale, size=NUM_DIMS),
                    repulsive=REPULSIVE,
                    attractive=ATTRACTIVE,
                    k=5,
                    alpha=rng.uniform(0.1, 1.0, size=2),
                    beta=rng.uniform(0.1, 1.0, size=2),
                )
                for _ in range(6)
            ]
            plane = FaultPlane([FaultRule("shard.probe", key=2)], seed=13)
            try:
                with faults.fault_plane(plane):
                    for query in queries:
                        result = engine.query(query)
                        _assert_sound(result, query, data)
                        assert {s for s, _ in result.coverage.skipped} == {2}
                _assert_drained(engine)
            finally:
                engine.close()

    def test_intermittent_storm_availability_is_total(self):
        """A flaky shard (45% probe failure) never errors a request: retries
        recover most answers bit-identically, the rest degrade soundly."""
        data = _dataset(seed=5)
        engine = _engine(
            data, _policy(failure_threshold=10_000)  # isolate retry/degrade
        )
        oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
        queries = _queries(seed=2, count=40)
        plane = FaultPlane(
            [FaultRule("shard.probe", rate=0.45, key=1)], seed=11
        )
        served = degraded = 0
        try:
            with faults.fault_plane(plane):
                for query in queries:
                    result = engine.query(query)  # never raises: availability
                    served += 1
                    if result.degraded:
                        degraded += 1
                        _assert_sound(result, query, data)
                    else:
                        expect = oracle.query(query)
                        assert result.row_ids == expect.row_ids
                        assert result.scores == expect.scores
            assert served == len(queries)
            assert plane.total_injections() > 0
            assert degraded < served  # retries recovered at least some storms
            _assert_drained(engine)
        finally:
            engine.close()

    def test_same_seed_replays_the_same_storm(self):
        data = _dataset(seed=5)

        def run(seed: int):
            engine = _engine(data, _policy(failure_threshold=10_000))
            plane = FaultPlane(
                [FaultRule("shard.probe", rate=0.4, key=1)], seed=seed
            )
            try:
                with faults.fault_plane(plane):
                    outcomes = tuple(
                        engine.query(q).degraded for q in _queries(3, 12)
                    )
                return outcomes, plane.total_injections()
            finally:
                engine.close()

        assert run(21) == run(21)

    def test_without_policy_faults_propagate_failfast(self):
        """The legacy contract: no resilience policy, no degradation."""
        data = _dataset()
        engine = _engine(data, policy=None)
        plane = FaultPlane([FaultRule("shard.probe", key=0)])
        try:
            with faults.fault_plane(plane):
                with pytest.raises(InjectedFault):
                    engine.query(_queries(4, 1)[0])
            _assert_drained(engine)
            result = engine.query(_queries(4, 1)[0])  # serves again, cleanly
            assert not result.degraded
        finally:
            engine.close()

    def test_nontransient_fault_always_raises(self):
        """``transient=False`` models a bug: the policy must not paper over it."""
        data = _dataset()
        engine = _engine(data, _policy())
        plane = FaultPlane([FaultRule("shard.probe", key=1, transient=False)])
        try:
            with faults.fault_plane(plane):
                with pytest.raises(InjectedFault):
                    engine.query(_queries(5, 1)[0])
            _assert_drained(engine)
        finally:
            engine.close()

    def test_kernel_faults_are_retried_like_probe_faults(self):
        """"batch.kernel" fires inside the shard's kernel; one transient blip
        is absorbed by the retry budget and the answer stays bit-identical."""
        data = _dataset(seed=9)
        engine = _engine(data, _policy())
        plane = FaultPlane([FaultRule("batch.kernel", times=1)])
        query = _queries(6, 1)[0]
        try:
            with faults.fault_plane(plane):
                result = engine.query(query)
            assert not result.degraded
            assert engine.serve_stats["retries"] == 1
            expect = SequentialScan(data, REPULSIVE, ATTRACTIVE).query(query)
            assert result.row_ids == expect.row_ids
            assert result.scores == expect.scores
            _assert_drained(engine)
        finally:
            engine.close()

    def test_slow_shard_delay_faults_do_not_change_answers(self):
        data = _dataset(seed=9)
        engine = _engine(data, _policy())
        plane = FaultPlane(
            [FaultRule("shard.probe", action="delay", delay_seconds=0.001, key=2)]
        )
        query = _queries(7, 1)[0]
        try:
            with faults.fault_plane(plane):
                result = engine.query(query)
            expect = SequentialScan(data, REPULSIVE, ATTRACTIVE).query(query)
            assert not result.degraded
            assert result.row_ids == expect.row_ids
        finally:
            engine.close()


# ---------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_starved_deadline_degrades_with_full_skip_coverage(self):
        data = _dataset()
        engine = _engine(data, _policy())
        queries = np.asarray([q.point for q in _queries(8, 1)])
        try:
            # Entry check passes, the round-boundary check sees it expired.
            deadline = Deadline(0.015, clock=SteppingClock(step=0.01))
            batch = engine.batch_query(queries, k=5, deadline=deadline)
            result = batch.results[0]
            assert result.degraded
            assert result.matches == []
            reasons = {reason for _, reason in result.coverage.skipped}
            assert reasons == {"deadline"}
            assert result.coverage.covered_fraction == 0.0
            _assert_drained(engine)
        finally:
            engine.close()

    def test_starved_deadline_without_degradation_raises(self):
        data = _dataset()
        engine = _engine(data, policy=None)
        queries = np.asarray([q.point for q in _queries(8, 1)])
        try:
            with pytest.raises(DeadlineExceeded):
                engine.batch_query(queries, k=5, deadline=Deadline(0.0))
            _assert_drained(engine)
        finally:
            engine.close()


# ------------------------------------------------------------- epoch storms
class TestEpochStorms:
    def test_pin_fault_leaks_nothing_and_serving_resumes(self):
        data = _dataset()
        engine = _engine(data, _policy())
        query = _queries(9, 1)[0]
        plane = FaultPlane([FaultRule("epoch.pin", times=1)])
        try:
            with faults.fault_plane(plane):
                with pytest.raises(InjectedFault):
                    engine.query(query)
            _assert_drained(engine)
            assert not engine.query(query).degraded
        finally:
            engine.close()

    def test_pin_storm_never_leaks_partial_cuts(self):
        """Random pin failures mid-cut (topology pinned, some shard views
        pinned) must roll every already-taken pin back."""
        data = _dataset()
        engine = _engine(data, _policy())
        queries = _queries(10, 20)
        plane = FaultPlane([FaultRule("epoch.pin", rate=0.3)], seed=13)
        survived = 0
        try:
            with faults.fault_plane(plane):
                for query in queries:
                    try:
                        engine.query(query)
                        survived += 1
                    except InjectedFault:
                        pass
            assert 0 < survived < len(queries)  # the storm actually bit
            _assert_drained(engine)
        finally:
            engine.close()

    def test_publish_fault_fails_the_write_not_the_readers(self):
        data = _dataset()
        engine = _engine(data, _policy())
        query = _queries(11, 1)[0]
        plane = FaultPlane([FaultRule("epoch.publish", times=1)])
        try:
            before = engine.query(query)
            with faults.fault_plane(plane):
                with pytest.raises(InjectedFault):
                    engine.insert(np.full(NUM_DIMS, 0.5), row_id=90_000)
                # Readers are untouched: the failed publish never became
                # current, so serving continues from the previous epoch.
                assert engine.query(query).row_ids == before.row_ids
            engine.insert(np.full(NUM_DIMS, 0.51), row_id=90_001)
            assert 90_001 in engine.query(
                SDQuery.simple(
                    point=np.full(NUM_DIMS, 0.51),
                    repulsive=REPULSIVE,
                    attractive=ATTRACTIVE,
                    k=3,
                    alpha=(1e-9, 1e-9),
                    beta=(1.0, 1.0),
                )
            ).row_ids
            _assert_drained(engine)
        finally:
            engine.close()


# ---------------------------------------------------------- serving front end
class TestServingUnderFaults:
    def test_coalescer_flush_fault_fails_the_batch_not_the_server(self):
        data = _dataset()
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        query = _queries(12, 1)[0]
        plane = FaultPlane([FaultRule("coalescer.flush", times=1)])

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=None)
            with faults.fault_plane(plane):
                doomed = asyncio.ensure_future(coalescer.submit(query))
                await asyncio.sleep(0)
                await coalescer.flush()
                with pytest.raises(InjectedFault):
                    await doomed
                # Same plane still installed, budget spent: the server lives.
                healthy = asyncio.ensure_future(coalescer.submit(query))
                await asyncio.sleep(0)
                await coalescer.flush()
                served = await healthy
            await coalescer.close()
            return served

        served = asyncio.run(scenario())
        expect = SequentialScan(data, REPULSIVE, ATTRACTIVE).query(query)
        assert served.result.row_ids == expect.row_ids
        report = index.query_session().epochs.leak_report()
        assert report["pinned_readers"] == 0

    def test_degraded_answers_are_never_cached(self):
        data = _dataset()
        clock = FakeClock()
        engine = _engine(data, _policy(failure_threshold=10_000, clock=clock))
        query = _queries(13, 1)[0]
        plane = FaultPlane([FaultRule("shard.probe", key=1)])

        async def scenario():
            cache = ResultCache(capacity=16)
            coalescer = TickCoalescer(engine, tick_seconds=None, cache=cache)
            with faults.fault_plane(plane):
                first = asyncio.ensure_future(coalescer.submit(query))
                await asyncio.sleep(0)
                await coalescer.flush()
                second = asyncio.ensure_future(coalescer.submit(query))
                await asyncio.sleep(0)
                await coalescer.flush()
                a, b = await first, await second
            await coalescer.close()
            return a, b, cache.stats(), coalescer.stats()

        try:
            a, b, cache_stats, co_stats = asyncio.run(scenario())
            assert a.degraded and b.degraded
            # The second identical query was *served*, not replayed from the
            # cache: partial answers must never outlive the fault that made
            # them (the epoch key would still match after shard recovery).
            assert not b.cached
            assert cache_stats["hits"] == 0
            assert co_stats["degraded_served"] == 2
            _assert_drained(engine)
        finally:
            engine.close()

    def test_embedded_server_storm_availability(self):
        """The ISSUE acceptance shape: a single-shard storm through the full
        submit -> coalesce -> degrade path, every request answered."""
        from repro.serving.server import SDQueryServer, ServingConfig

        data = _dataset(seed=23)
        engine = _engine(data, _policy(failure_threshold=10_000))
        oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
        queries = _queries(seed=14, count=30)
        plane = FaultPlane(
            [FaultRule("shard.probe", rate=0.4, key=1)], seed=29
        )

        async def scenario():
            outcomes = []
            async with SDQueryServer(engine, ServingConfig(tick_seconds=0.0)) as server:
                with faults.fault_plane(plane):
                    for query in queries:
                        served = await server.submit(
                            query.point,
                            k=query.k,
                            alpha=query.alpha,
                            beta=query.beta,
                        )
                        outcomes.append(served)
            return outcomes

        try:
            outcomes = asyncio.run(scenario())
            assert len(outcomes) == len(queries)  # availability: all answered
            degraded = 0
            for query, served in zip(queries, outcomes):
                if served.result.degraded:
                    degraded += 1
                    _assert_sound(served.result, query, data)
                else:
                    expect = oracle.query(query)
                    assert served.result.row_ids == expect.row_ids
                    assert served.result.scores == expect.scores
            assert plane.total_injections() > 0
            _assert_drained(engine)
        finally:
            engine.close()


# ----------------------------------------------------- chaos with mutations
class TestChaosWithWriters:
    def test_storm_over_readers_and_writers_stays_sound(self):
        """Fault storm + concurrent mutation: every reader's answer is judged
        against its own pinned cut — bit-identical when whole, sound when
        degraded — and nothing leaks once the threads drain."""
        data = _dataset(seed=31, rows=300)
        engine = _engine(data, _policy(failure_threshold=10_000))
        plane = FaultPlane(
            [FaultRule("shard.probe", rate=0.25, key=1)], seed=37
        )
        errors: list = []
        stop = threading.Event()

        def writer(wid: int) -> None:
            rng = np.random.default_rng(1000 + wid)
            try:
                for step in range(40):
                    row = 50_000 + wid * 1_000 + step
                    engine.insert(rng.uniform(0, 1, size=NUM_DIMS), row_id=row)
                    if step % 3 == 0:
                        engine.delete(row)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader(rid: int) -> None:
            try:
                for it in range(8):
                    queries = _queries(seed=100 * rid + it, count=2, k=4)
                    with engine.snapshot() as snap:
                        rows, matrix = snap.frozen()
                        row_ids = [int(r) for r in rows]
                        for query in queries:
                            result = snap.query(query)
                            if result.degraded:
                                _assert_sound(
                                    result, query, matrix, row_ids=row_ids
                                )
                            else:
                                expect = SequentialScan(
                                    matrix,
                                    REPULSIVE,
                                    ATTRACTIVE,
                                    row_ids=row_ids,
                                ).query(query)
                                assert result.row_ids == expect.row_ids
                                assert result.scores == expect.scores
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,), name=f"chaos-writer-{w}")
            for w in range(2)
        ] + [
            threading.Thread(target=reader, args=(r,), name=f"chaos-reader-{r}")
            for r in range(3)
        ]
        try:
            with faults.fault_plane(plane):
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
            alive = [t.name for t in threads if t.is_alive()]
            assert not alive, f"deadlocked threads: {alive}"
            assert not errors, f"thread failures: {errors[:3]}"
            assert plane.total_injections() > 0
            _assert_drained(engine)
        finally:
            engine.close()


# ------------------------------------------------------- durability under raise
class TestDurabilityFaults:
    def test_wal_append_synced_fault_poisons_but_recovery_is_exact(self, tmp_path):
        """A fault after the record is durable but before it is acknowledged:
        the live index refuses further writes (it is ahead of what it can
        prove journaled) and recovery from disk is exact."""
        from repro.core.persistence import DurableIndex

        data = _dataset(seed=41, rows=60)
        engine = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(engine, tmp_path / "dur")
        rng = np.random.default_rng(43)
        for _ in range(5):
            durable.insert(rng.uniform(0, 1, size=NUM_DIMS))
        plane = FaultPlane([FaultRule("wal.append.synced", times=1)])
        with faults.fault_plane(plane):
            with pytest.raises(InjectedFault):
                durable.insert(rng.uniform(0, 1, size=NUM_DIMS))
        with pytest.raises(RuntimeError, match="poisoned"):
            durable.insert(rng.uniform(0, 1, size=NUM_DIMS))
        durable.close()

        recovered = DurableIndex.recover(tmp_path / "dur")
        # The faulted record had hit stable storage before the injection, so
        # this recovery deterministically keeps it — an unacknowledged write
        # may legitimately survive; it must never corrupt the prefix.
        assert recovered.last_recovery["recovered_lsn"] == 6
        store = {row: data[row] for row in range(len(data))}
        replay = np.random.default_rng(43)
        for step in range(6):
            store[len(data) + step] = replay.uniform(0, 1, size=NUM_DIMS)
        rows = sorted(store)
        oracle = SequentialScan(
            np.asarray([store[row] for row in rows], dtype=float),
            REPULSIVE,
            ATTRACTIVE,
            row_ids=rows,
        )
        probe = np.random.default_rng(99).random((3, NUM_DIMS))
        expect = oracle.batch_query(probe, k=5)
        got = recovered.batch_query(probe, k=5)
        for j in range(3):
            assert got[j].row_ids == expect[j].row_ids
            assert got[j].scores == expect[j].scores
        recovered.close()

    def test_checkpoint_manifest_fault_keeps_the_old_recovery_root(self, tmp_path):
        """"snapshot.manifest.before" kills a checkpoint mid-stream: CURRENT
        never flips, so recovery replays the old snapshot plus the full WAL
        and a later checkpoint succeeds."""
        from repro.core.persistence import DurableIndex

        data = _dataset(seed=47, rows=60)
        engine = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(engine, tmp_path / "dur")
        rng = np.random.default_rng(53)
        acked = [rng.uniform(0, 1, size=NUM_DIMS) for _ in range(6)]
        for point in acked[:3]:
            durable.insert(point)
        durable.checkpoint()
        for point in acked[3:]:
            durable.insert(point)
        plane = FaultPlane([FaultRule("snapshot.manifest.before", times=1)])
        with faults.fault_plane(plane):
            with pytest.raises(InjectedFault):
                durable.checkpoint()
        # The failed checkpoint is invisible: mutations continue, and a clean
        # checkpoint afterwards becomes the new recovery root.
        durable.insert(np.full(NUM_DIMS, 0.25), row_id=70_000)
        durable.checkpoint()
        durable.close()

        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.point(70_000) is not None
        store = {row: data[row] for row in range(len(data))}
        for step, point in enumerate(acked):
            store[len(data) + step] = point
        store[70_000] = np.full(NUM_DIMS, 0.25)
        rows = sorted(store)
        oracle = SequentialScan(
            np.asarray([store[row] for row in rows], dtype=float),
            REPULSIVE,
            ATTRACTIVE,
            row_ids=rows,
        )
        probe = np.random.default_rng(61).random((3, NUM_DIMS))
        expect = oracle.batch_query(probe, k=5)
        got = recovered.batch_query(probe, k=5)
        for j in range(3):
            assert got[j].row_ids == expect[j].row_ids
            assert got[j].scores == expect[j].scores
        recovered.close()


# ------------------------------------------------------- compaction faults
class TestCompactionFaults:
    """LSM structure-op faults (``compact.flush`` / ``compact.merge``).

    Structure maintenance is answer-invariant, so its faults must fail at
    most the writer that triggered them: the already-published mutation
    stays visible, no level is ever half-built, and a clean retry folds the
    backlog.  Background mode turns the same faults into stored failures
    surfaced on the next write — reads never see any of it.
    """

    def _flat(self, rows: int = 60, **kwargs):
        data = _dataset(seed=71, rows=rows)
        kwargs.setdefault("flush_rows", 8)
        kwargs.setdefault("fanout", 2)
        kwargs.setdefault("background_compaction", False)
        index = SDIndex.build(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, **kwargs
        )
        return data, index

    def _assert_exact(self, index) -> None:
        with index.snapshot() as snapshot:
            rows, matrix = snapshot.frozen()
        oracle = SequentialScan(
            matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in rows]
        )
        for query in _queries(73, 3):
            got = index.query(query)
            want = oracle.query(query)
            assert got.row_ids == want.row_ids
            assert got.scores == want.scores

    def test_flush_fault_fails_the_writer_not_the_world(self):
        data, index = self._flat()
        session = index._aggregator.serving_session()
        rng = np.random.default_rng(79)
        plane = FaultPlane([FaultRule("compact.flush", times=1)])
        with faults.fault_plane(plane):
            with pytest.raises(InjectedFault):
                # Trips the flush threshold; the inline flush faults.
                index.bulk_insert(rng.random((12, NUM_DIMS)))
        # The insert itself was published before maintenance ran, so it is
        # visible; the faulted flush left the delta pending, nothing torn.
        structure = session.structure()
        assert structure["delta_live"] == 12
        self._assert_exact(index)
        assert index.flush() is True  # clean retry folds the backlog
        assert session.structure()["delta_live"] == 0
        self._assert_exact(index)
        assert session.epochs.leak_report()["pinned_readers"] == 0

    def test_merge_fault_leaves_level_structure_intact(self):
        data, index = self._flat(flush_rows=100)
        session = index._aggregator.serving_session()
        rng = np.random.default_rng(83)
        index.bulk_insert(rng.random((6, NUM_DIMS)))
        index.flush()
        index.bulk_insert(rng.random((9, NUM_DIMS)))
        index.flush()
        seqs = [lvl["seq"] for lvl in session.structure()["levels"]]
        assert len(seqs) == 3
        plane = FaultPlane([FaultRule("compact.merge", times=1)])
        with faults.fault_plane(plane):
            with pytest.raises(InjectedFault):
                index.compact(seqs)
        # The faulted merge published nothing: same levels, same seqs.
        assert [lvl["seq"] for lvl in session.structure()["levels"]] == seqs
        self._assert_exact(index)
        assert index.compact(seqs) == tuple(seqs)
        assert len(session.structure()["levels"]) == 1
        self._assert_exact(index)
        assert session.epochs.leak_report()["pinned_readers"] == 0

    def test_background_compaction_storm_stays_available_and_exact(self):
        data, index = self._flat(flush_rows=6, background_compaction=True)
        session = index._aggregator.serving_session()
        rng = np.random.default_rng(89)
        plane = FaultPlane(
            [
                FaultRule("compact.flush", rate=0.5),
                FaultRule("compact.merge", rate=0.5),
            ],
            seed=17,
        )
        surfaced = 0
        with faults.fault_plane(plane):
            for step in range(30):
                try:
                    # The insert may surface a *previous* background
                    # maintenance failure — the write still applied.
                    index.bulk_insert(rng.random((4, NUM_DIMS)))
                except RuntimeError:
                    surfaced += 1
                if step % 10 == 9:
                    self._assert_exact(index)
            try:
                index.quiesce_maintenance()
            except RuntimeError:
                surfaced += 1
            assert plane.hits.get("compact.flush", 0) > 0  # the storm bit
        assert surfaced > 0
        # Once the plane lifts, maintenance catches up and nothing leaked.
        index.quiesce_maintenance()
        index.lsm_maintain()
        assert session.structure()["delta_live"] < 6
        self._assert_exact(index)
        assert session.epochs.leak_report()["pinned_readers"] == 0
