"""Integration tests for multi-process sharded serving (``core/procserving``).

One spawned worker process per shard serves its mmap-loaded sub-snapshot;
the coordinator scatter-gathers over pipes with the same bound-ordered,
cross-shard-pruned visit loop as the in-process ``ShardedIndex``.  These
tests pin down the operational half of that contract:

* worker death degrades (per-shard breaker + explicit ``ShardCoverage``),
  never hangs, and a respawned worker rejoins with bit-identical answers;
* a request deadline expires cooperatively into a degraded answer;
* the HTTP front end round-trips through ``backend="process"``;
* no test leaks worker processes (autouse tripwire).

Exact-answer agreement across fleets lives in the differential-fuzz harness
(``test_differential_fuzz.py::test_process_sharded_engines_agree_exactly``).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.deadline import Deadline
from repro.core.procserving import ProcessShardedIndex
from repro.core.sharding import ShardedIndex
from repro.serving.breaker import ResiliencePolicy
from repro.serving.server import SDQueryServer, ServingClient, ServingConfig

pytestmark = pytest.mark.procserve

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


@pytest.fixture(autouse=True)
def no_orphaned_workers():
    """Tripwire: no test may leak a worker process past its engine's close."""
    yield
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leftover = multiprocessing.active_children()
    assert leftover == [], f"leaked worker processes: {leftover}"


def _dataset(rows: int = 240, seed: int = 5) -> np.ndarray:
    return np.random.default_rng(seed).random((rows, NUM_DIMS))


def _points(count: int, seed: int = 11) -> np.ndarray:
    return np.random.default_rng(seed).random((count, NUM_DIMS))


def _same(expected, got) -> None:
    assert got.row_ids == expected.row_ids
    assert got.scores == expected.scores


class TestProcessServing:
    def test_snapshot_versions_flip_on_checkpoint(self):
        data = _dataset()
        with ProcessShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        ) as engine:
            with engine.snapshot() as snap:
                v0 = snap.version
                assert len(snap) == len(data)
            engine.insert(np.full(NUM_DIMS, 0.5), row_id=10_000)
            with engine.snapshot() as snap:
                v1 = snap.version
            assert v1 != v0  # the WAL tail advanced
            engine.checkpoint()
            with engine.snapshot() as snap:
                v2 = snap.version
            assert v2[0] == v1[0] + 1  # an epoch flip was broadcast
        assert engine.closed

    def test_queries_after_close_raise(self):
        engine = ProcessShardedIndex(
            _dataset(), repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        )
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            engine.batch_query(_points(2), k=3)

    def test_deadline_expiry_degrades_not_hangs(self):
        """An expiring budget turns into an explicitly partial answer —
        skipped shards with reason ``deadline`` — not a hang or a crash."""

        class Ticker:
            def __init__(self, step: float) -> None:
                self.now = 0.0
                self.step = step

            def __call__(self) -> float:
                self.now += self.step
                return self.now

        data = _dataset()
        with ProcessShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        ) as engine:
            # The budget survives the serve-entry check, then expires on the
            # very next clock consult — before any shard is probed.
            deadline = Deadline(0.02, clock=Ticker(0.01))
            result = engine.batch_query(_points(3), k=5, deadline=deadline)
            for got in result.results:
                assert got.degraded
                assert got.coverage is not None
                reasons = {reason for _shard, reason in got.coverage.skipped}
                assert reasons == {"deadline"}

    @pytest.mark.chaos
    def test_sigkill_degrades_then_recovers_bit_identical(self):
        """The worker-death drill: SIGKILL one worker mid-service, observe
        explicit degradation (coverage + open breaker), then a respawned
        worker rejoining with answers bit-identical to the oracle."""
        data = _dataset(rows=300, seed=9)
        resilience = ResiliencePolicy(
            retry=None, failure_threshold=1, reset_timeout=0.2
        )
        with ProcessShardedIndex(
            data,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=2,
            resilience=resilience,
        ) as engine:
            oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
            points = _points(4, seed=21)
            expected = oracle.batch_query(points, k=5)

            healthy = engine.batch_query(points, k=5)
            for want, got in zip(expected.results, healthy.results):
                _same(want, got)

            victim_pid = engine.worker_pids()[0]
            assert victim_pid is not None
            os.kill(victim_pid, signal.SIGKILL)

            degraded = engine.batch_query(points, k=5)
            skipped_shards = set()
            for got in degraded.results:
                assert got.degraded
                assert got.coverage is not None
                for shard, reason in got.coverage.skipped:
                    skipped_shards.add(shard)
                    assert reason in ("fault", "breaker_open")
            assert skipped_shards == {0}
            states = [b["state"] for b in engine.breaker_stats()]
            assert states[0] == "open" and states[1] == "closed"

            engine.await_workers(30.0)
            assert engine.worker_pids()[0] not in (None, victim_pid)
            time.sleep(resilience.reset_timeout + 0.1)  # half-open probe due

            recovered = engine.batch_query(points, k=5)
            for want, got in zip(expected.results, recovered.results):
                assert not got.degraded
                _same(want, got)
            assert engine.breaker_stats()[0]["state"] == "closed"

    @pytest.mark.chaos
    def test_kill_storm_never_hangs(self):
        """Kill every worker between serves: each call returns promptly with
        an explicit (possibly empty, fully skipped) answer, and the fleet
        heals once the storm stops."""
        data = _dataset(rows=200, seed=3)
        resilience = ResiliencePolicy(
            retry=None, failure_threshold=1, reset_timeout=0.1
        )
        with ProcessShardedIndex(
            data,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=2,
            resilience=resilience,
        ) as engine:
            points = _points(2, seed=33)
            for _round in range(3):
                for pid in engine.worker_pids():
                    if pid is not None:
                        os.kill(pid, signal.SIGKILL)
                start = time.monotonic()
                result = engine.batch_query(points, k=3)
                assert time.monotonic() - start < 30.0
                assert all(r.degraded for r in result.results)
                engine.await_workers(30.0)
            time.sleep(resilience.reset_timeout + 0.1)
            oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
            expected = oracle.batch_query(points, k=3)
            healed = engine.batch_query(points, k=3)
            for want, got in zip(expected.results, healed.results):
                assert not got.degraded
                _same(want, got)


class TestProcessBackendServer:
    def test_http_round_trip_matches_oracle(self):
        """``backend="process"`` end to end: HTTP in, worker fleet out, and
        every wire answer bit-identical to the sequential-scan oracle."""
        data = _dataset(rows=220, seed=13)
        inner = ShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        )
        oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
        points = _points(3, seed=29)

        async def scenario():
            config = ServingConfig(
                tick_seconds=None, coalesce=False, backend="process"
            )
            async with SDQueryServer(inner, config) as server:
                host, port = await server.start()
                answers = []
                async with ServingClient(host, port) as client:
                    for point in points:
                        status, payload = await client.query(point, k=5)
                        answers.append((status, payload))
                stats = server.stats()
            return answers, stats

        answers, stats = asyncio.run(scenario())
        assert stats["engine"] == "ProcessShardedIndex"
        expected = oracle.batch_query(points, k=5)
        for expect, (status, payload) in zip(expected.results, answers):
            assert status == 200
            assert payload["row_ids"] == list(expect.row_ids)
            assert payload["scores"] == list(expect.scores)
            assert not payload["degraded"]
        # The server owned the process engine and closed it on exit.
        assert inner.num_shards == 2

    def test_passthrough_engine_is_not_closed_by_server(self):
        """Handing the server an already-built ProcessShardedIndex keeps
        ownership with the caller: the server must not close it."""
        data = _dataset(rows=180, seed=17)
        engine = ProcessShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        )
        try:

            async def scenario():
                config = ServingConfig(
                    tick_seconds=None, coalesce=False, backend="process"
                )
                async with SDQueryServer(engine, config) as server:
                    served = await server.submit([0.5, 0.5, 0.5, 0.5], k=3)
                return served

            served = asyncio.run(scenario())
            assert not served.degraded
            assert not engine.closed  # still the caller's to close
            engine.batch_query(_points(1), k=3)
        finally:
            engine.close()

    def test_backend_validation(self):
        data = _dataset(rows=64)
        flat_like = SequentialScan(data, REPULSIVE, ATTRACTIVE)
        with pytest.raises(ValueError, match="backend"):
            SDQueryServer(flat_like, ServingConfig(backend="fork"))
        with pytest.raises(TypeError, match="ShardedIndex"):
            SDQueryServer(flat_like, ServingConfig(backend="process"))
