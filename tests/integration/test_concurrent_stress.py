"""Concurrent serve-while-mutate stress and regression suite (DESIGN.md §6).

The acceptance scenario of the epoch subsystem: reader threads continuously
pin snapshots and answer queries while writer threads hammer the same engine
with interleaved inserts, deletes and rebalances.  Every pinned read is
checked **bit-identically** against a frozen oracle built from the very epoch
the reader pinned (a sequential scan over ``snapshot.frozen()``), so any torn
read, stale bound or wrong prune fails loudly.  After the storm, every epoch
manager must have drained: no leaked pins, no unreclaimed epochs.

Also hosts the executor-lifecycle and rebalance-race regression tests of the
same PR, plus the fully-emptied-session regressions.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.core.topk import TopKIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4

NUM_READERS = 4
NUM_WRITERS = 2
#: Per-writer mutation floor; 2 writers x 510 > the 1,000-mutation acceptance bar.
WRITER_OPS = 510
JOIN_TIMEOUT = 180.0


def _run_storm(engine, *, initial_rows: int, seed: int):
    """Drive NUM_WRITERS mutators + NUM_READERS snapshot-checking readers."""
    errors = []
    checks = [0] * NUM_READERS
    mutations = [0] * NUM_WRITERS
    writers_done = threading.Event()
    barrier = threading.Barrier(NUM_READERS + NUM_WRITERS)

    # Disjoint ownership: writer w owns initial rows with row % NUM_WRITERS == w
    # and allocates fresh ids from a private range, so two writers never race
    # to delete the same row (the engine serializes them; the *test* must not
    # double-book victims).
    def writer(wid: int) -> None:
        try:
            rng = np.random.default_rng(seed * 1000 + wid)
            owned = [row for row in range(initial_rows) if row % NUM_WRITERS == wid]
            next_id = 1_000_000 * (wid + 1)
            barrier.wait()
            while mutations[wid] < WRITER_OPS:
                roll = rng.random()
                if roll < 0.35 and len(owned) > 8:
                    victim = owned.pop(int(rng.integers(len(owned))))
                    engine.delete(victim)
                    mutations[wid] += 1
                elif roll < 0.45 and len(owned) > 16:
                    count = int(rng.integers(2, 6))
                    victims = [
                        owned.pop(int(rng.integers(len(owned)))) for _ in range(count)
                    ]
                    engine.bulk_delete(victims)
                    mutations[wid] += count
                elif roll < 0.75:
                    engine.insert(rng.random(NUM_DIMS), row_id=next_id)
                    owned.append(next_id)
                    next_id += 1
                    mutations[wid] += 1
                else:
                    count = int(rng.integers(2, 8))
                    ids = list(range(next_id, next_id + count))
                    engine.bulk_insert(rng.random((count, NUM_DIMS)), row_ids=ids)
                    owned.extend(ids)
                    next_id += count
                    mutations[wid] += count
                if isinstance(engine, ShardedIndex) and mutations[wid] % 200 < 2:
                    engine.maybe_rebalance()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
            writers_done.set()

    def reader(rid: int) -> None:
        try:
            rng = np.random.default_rng(seed * 7000 + rid)
            barrier.wait()
            while not writers_done.is_set() or checks[rid] == 0:
                points = rng.random((3, NUM_DIMS))
                ks = rng.choice(np.asarray([1, 5, 10]), size=3)
                alphas = rng.uniform(0.05, 1.0, size=(3, len(REPULSIVE)))
                betas = rng.uniform(0.05, 1.0, size=(3, len(ATTRACTIVE)))
                with engine.snapshot() as snap:
                    batch = snap.batch_query(points, k=ks, alpha=alphas, beta=betas)
                    rows, matrix = snap.frozen()
                # The linearizability-style check: the answer must be
                # bit-identical to a scan over exactly the pinned population.
                oracle = SequentialScan(
                    matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in rows]
                ).batch_query(points, k=ks, alpha=alphas, beta=betas)
                for j in range(3):
                    assert batch[j].row_ids == oracle[j].row_ids, (
                        f"reader {rid} diverged from its pinned epoch at check "
                        f"{checks[rid]} query {j}"
                    )
                    assert batch[j].scores == oracle[j].scores
                checks[rid] += 1
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,), name=f"writer-{w}")
        for w in range(NUM_WRITERS)
    ] + [
        threading.Thread(target=reader, args=(r,), name=f"reader-{r}")
        for r in range(NUM_READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads[:NUM_WRITERS]:
        thread.join(timeout=JOIN_TIMEOUT)
    writers_done.set()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    alive = [thread.name for thread in threads if thread.is_alive()]
    assert not alive, f"deadlocked threads: {alive}"
    assert not errors, f"thread failures: {errors[:3]}"
    assert sum(mutations) >= 1000
    assert all(count > 0 for count in checks)
    return sum(checks)


def _assert_drained(engine: ShardedIndex) -> None:
    """No leaked epochs anywhere once every reader released its snapshot."""
    topology = engine._topology.leak_report()
    assert topology["pinned_readers"] == 0
    assert topology["live_epochs"] == 1
    for shard in engine._shards:
        report = shard.serving_session().epochs.leak_report()
        assert report["pinned_readers"] == 0, report
        assert report["live_epochs"] == 1, report


@pytest.mark.stress
@pytest.mark.parametrize(
    "num_shards,partitioner", [(2, "range"), (4, "hash")]
)
def test_sharded_storm_every_read_matches_its_pinned_epoch(num_shards, partitioner):
    rng = np.random.default_rng(20260729 + num_shards)
    data = rng.random((800, NUM_DIMS))
    engine = ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=num_shards,
        partitioner=partitioner,
    )
    try:
        _run_storm(engine, initial_rows=800, seed=num_shards)
        _assert_drained(engine)
        # The engine still serves correctly after the storm.
        with engine.snapshot() as snap:
            rows, matrix = snap.frozen()
        points = rng.random((2, NUM_DIMS))
        expected = SequentialScan(
            matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in rows]
        ).batch_query(points, k=5)
        batch = engine.batch_query(points, k=5)
        for j in range(2):
            assert batch[j].row_ids == expected[j].row_ids
    finally:
        engine.close()


@pytest.mark.stress
def test_flat_storm_every_read_matches_its_pinned_epoch():
    rng = np.random.default_rng(77)
    data = rng.random((600, NUM_DIMS))
    index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    _run_storm(index, initial_rows=600, seed=9)
    report = index.query_session().epochs.leak_report()
    assert report["pinned_readers"] == 0
    assert report["live_epochs"] == 1


class TestExecutorLifecycle:
    """Satellite: close() idempotence, serve-after-close, exception masking."""

    def _engine(self, **kwargs):
        data = np.random.default_rng(3).random((120, NUM_DIMS))
        return ShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2, **kwargs
        )

    def test_close_is_idempotent(self):
        engine = self._engine()
        engine.batch_query(np.random.default_rng(4).random((2, NUM_DIMS)), k=3)
        engine.close()
        engine.close()
        assert engine.closed

    def test_serve_after_close_raises_instead_of_resurrecting(self):
        engine = self._engine()
        point = np.random.default_rng(5).random(NUM_DIMS)
        engine.query(point, k=3)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.query(point, k=3)
        with pytest.raises(RuntimeError, match="closed"):
            engine.batch_query(point[None, :], k=3)
        with pytest.raises(RuntimeError, match="closed"):
            engine.snapshot()
        assert engine._executor is None

    def test_open_snapshot_refuses_to_serve_after_close(self):
        # Must raise regardless of shard count / parallelism — the closed
        # check cannot live only on the parallel-executor path.
        data = np.random.default_rng(7).random((40, NUM_DIMS))
        engine = ShardedIndex(
            data,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=1,
            parallel=False,
        )
        snap = engine.snapshot()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            snap.batch_query(data[:2], k=2)
        snap.close()

    def test_reads_survive_concurrent_topology_reads(self):
        """Regression: unpinned len()/skew()/stats() racing a rebalance must
        never observe a reclaimed topology epoch."""
        rng = np.random.default_rng(13)
        data = rng.random((200, NUM_DIMS))
        engine = ShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        )
        errors = []
        done = threading.Event()

        def monitor():
            try:
                while not done.is_set():
                    assert len(engine) >= 0
                    assert engine.skew() >= 1.0
                    assert engine.num_shards == 2
                    engine.stats()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=monitor) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(15):
                engine.rebalance()
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors, errors
        engine.close()

    def test_exit_does_not_mask_body_exceptions(self):
        with pytest.raises(ValueError, match="boom"):
            with self._engine() as engine:
                engine.query(np.random.default_rng(6).random(NUM_DIMS), k=2)
                raise ValueError("boom")
        assert engine.closed

    def test_probe_exception_propagates_unmasked(self):
        engine = self._engine(parallel=True)
        try:
            # Fail one shard's execution path: the original error type and
            # message must surface from the parallel collection, not a
            # secondary cancellation/shutdown error.
            session = engine.shard(0).serving_session()

            def explode(*_args, **_kwargs):
                raise RuntimeError("shard 0 exploded")

            session._execute = explode
            with pytest.raises(RuntimeError, match="shard 0 exploded"):
                engine.batch_query(
                    np.random.default_rng(8).random((4, NUM_DIMS)), k=50
                )
        finally:
            engine.close()


class TestRebalanceRace:
    """Satellite: a probe launched pre-rebalance keeps its pinned topology."""

    def test_blocking_probe_survives_concurrent_rebalance(self):
        rng = np.random.default_rng(11)
        data = rng.random((300, NUM_DIMS))
        engine = ShardedIndex(
            data,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=2,
            partitioner="range",
        )
        try:
            points = rng.random((3, NUM_DIMS))
            expected = engine.batch_query(points, k=7)
            old_sessions = [shard.serving_session() for shard in engine._shards]

            started = threading.Event()
            release = threading.Event()
            originals = [session._execute for session in old_sessions]

            def gate(session, original):
                def gated(state, spec, lower_bounds, label, **kwargs):
                    started.set()
                    assert release.wait(timeout=60), "probe gate never released"
                    return original(state, spec, lower_bounds, label, **kwargs)

                return gated

            for session, original in zip(old_sessions, originals):
                session._execute = gate(session, original)

            result_holder = {}

            def probe():
                result_holder["batch"] = engine.batch_query(points, k=7)

            thread = threading.Thread(target=probe)
            thread.start()
            assert started.wait(timeout=60), "probe never started"
            # Rebalance lands *while the probe is blocked mid-shard*.  It must
            # not deadlock, and the probe must keep reading its pinned
            # pre-rebalance topology.
            skew_inserts = rng.random((150, NUM_DIMS)) * 0.05
            engine.bulk_insert(skew_inserts)
            assert engine.rebalance() or True
            release.set()
            thread.join(timeout=120)
            assert not thread.is_alive(), "probe deadlocked against rebalance"

            batch = result_holder["batch"]
            for j in range(3):
                assert batch[j].row_ids == expected[j].row_ids
                assert batch[j].scores == expected[j].scores
            # The probe's topology epoch was released afterwards: drained.
            _assert_drained(engine)
            # Post-rebalance serving reflects the skew inserts.
            assert len(engine) == 450
            fresh = engine.batch_query(points, k=7)
            with engine.snapshot() as snap:
                rows, matrix = snap.frozen()
            oracle = SequentialScan(
                matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in rows]
            ).batch_query(points, k=7)
            for j in range(3):
                assert fresh[j].row_ids == oracle[j].row_ids
        finally:
            engine.close()


class TestEmptiedSessions:
    """Satellite: fully tombstoned sessions stay valid and refillable."""

    def test_flat_index_empties_and_refills(self):
        rng = np.random.default_rng(21)
        data = rng.random((24, NUM_DIMS))
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        index.query(data[0], k=3)  # build the serving session
        session = index.query_session()
        index.bulk_delete(list(range(24)))
        # Division-safe garbage accounting with zero live rows.
        assert np.isfinite(session.garbage_fraction())
        assert len(index.query(data[0], k=3)) == 0
        # Refill through the patch path: the empty flat view must reflatten
        # into a valid non-empty one, not trip the append RuntimeError.
        fresh = rng.random((10, NUM_DIMS))
        ids = index.bulk_insert(fresh)
        result = index.query(fresh[0], k=4)
        oracle = SequentialScan(
            fresh, REPULSIVE, ATTRACTIVE, row_ids=ids
        ).batch_query(fresh[:1], k=4)[0]
        assert result.row_ids == oracle.row_ids
        assert result.scores == oracle.scores
        index.insert(rng.random(NUM_DIMS))
        assert len(index.query(fresh[0], k=20)) == 11

    def test_one_by_one_emptying_then_single_insert(self):
        rng = np.random.default_rng(22)
        data = rng.random((12, NUM_DIMS))
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        index.query(data[0], k=2)
        for row in range(12):
            index.delete(row)
            assert len(index.query(data[0], k=3)) == min(11 - row, 3)
        row = index.insert(rng.random(NUM_DIMS))
        result = index.query(data[0], k=5)
        assert result.row_ids == [row]

    def test_sharded_engine_empties_and_refills(self):
        rng = np.random.default_rng(23)
        data = rng.random((40, NUM_DIMS))
        engine = ShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=4
        )
        try:
            engine.batch_query(data[:2], k=3)
            engine.bulk_delete(list(range(40)))
            assert len(engine) == 0
            assert all(len(r) == 0 for r in engine.batch_query(data[:2], k=3))
            fresh = rng.random((8, NUM_DIMS))
            ids = engine.bulk_insert(fresh)
            batch = engine.batch_query(fresh[:2], k=3)
            oracle = SequentialScan(
                fresh, REPULSIVE, ATTRACTIVE, row_ids=ids
            ).batch_query(fresh[:2], k=3)
            for j in range(2):
                assert batch[j].row_ids == oracle[j].row_ids
                assert batch[j].scores == oracle[j].scores
        finally:
            engine.close()

    def test_topk_flat_view_empties_and_refills(self):
        rng = np.random.default_rng(24)
        data = rng.random((16, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        index.query(0.5, 0.5, k=3)  # build the flat view
        for row in range(16):
            index.delete(row)
        assert len(index.query(0.5, 0.5, k=3)) == 0
        row = index.insert(0.25, 0.75)
        result = index.query(0.5, 0.5, k=3)
        assert result.row_ids == [row]
