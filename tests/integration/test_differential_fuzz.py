"""Differential fuzz harness: every execution engine must agree exactly.

Hypothesis drives random interleavings of ``insert`` / ``delete`` /
``bulk_insert`` / ``bulk_delete`` / query operations against five engines at
once:

* the legacy threshold traversal (``SDIndex.query(..., engine="legacy")``),
* the flattened-session fast path of the same index (single and batched),
* :class:`repro.core.sharding.ShardedIndex` at 1, 2, 4 and 8 shards (hash and
  range partitioning),
* a :class:`SequentialScan` oracle rebuilt from a plain dict of live rows.

All engines must return *identical* ``(score, row_id)`` answers — bit-equal
floats, same ids, same order.  Hypothesis chooses only the shape of the
interleaving (which ops, when to query) plus a seed; the actual coordinates
come from a ``numpy`` generator under that seed, so points are continuous
random values and exact score ties (where the legacy traversal's tie-break
legitimately differs) have probability zero.

A deterministic long-run variant drives 1,000 interleaved updates through the
same five-way comparison at periodic checkpoints — the acceptance scenario of
the sharded serving engine.

Every engine runs LSM maintenance (``compaction="size_tiered"``, the default)
with a deliberately tiny ``flush_rows`` so the fuzzed populations actually
layer into multiple levels: the merged delta + levels read path, mid-stream
flushes and level merges are all inside the exact-agreement envelope.  An
explicit ``compact`` rule forces flush/merge at hypothesis-chosen points, and
a WAL-journaled :class:`DurableIndex` member verifies that durability-driven
maintenance (structure ops journaled per mutation) never perturbs an answer.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.persistence import DurableIndex
from repro.core.procserving import ProcessShardedIndex
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4
SHARD_COUNTS = (1, 2, 4, 8)
#: Tiny flush threshold so fuzz-sized populations layer into real LSM levels;
#: inline (non-background) maintenance keeps each interleaving deterministic.
LSM_OPTIONS = dict(flush_rows=24, fanout=2, background_compaction=False)


class Harness:
    """One flat index, four sharded engines and a dict-backed oracle in lockstep.

    ``process_shards`` adds multi-process sharded engines (one spawned worker
    per shard over mmap'd snapshots) to the comparison set.  They are opt-in:
    spawning a fleet per example is far too slow for the hypothesis test, so
    only the deterministic scenarios pay for it.  A harness with process
    members must be ``close()``d (worker processes and tempdirs).
    """

    def __init__(
        self,
        seed: int,
        initial_rows: int,
        process_shards: tuple = (),
        durable: bool = False,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        data = self.rng.random((initial_rows, NUM_DIMS))
        self.store = {row: data[row].copy() for row in range(initial_rows)}
        self.flat = SDIndex.build(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, **LSM_OPTIONS
        )
        self.sharded = [
            ShardedIndex(
                data,
                repulsive=REPULSIVE,
                attractive=ATTRACTIVE,
                num_shards=num_shards,
                # Cover both partitioners across the fleet.
                partitioner="range" if num_shards in (2, 8) else "hash",
                **LSM_OPTIONS,
            )
            for num_shards in SHARD_COUNTS
        ]
        self.process = [
            ProcessShardedIndex(
                data,
                repulsive=REPULSIVE,
                attractive=ATTRACTIVE,
                num_shards=num_shards,
                partitioner="range" if num_shards == 2 else "hash",
            )
            for num_shards in process_shards
        ]
        self.durable = None
        self._durable_dir = None
        if durable:
            # A WAL-journaled member: the wrapper claims maintenance
            # scheduling from the engine and journals every flush/compact it
            # drives, so the fuzz also covers durability-owned structure ops.
            self._durable_dir = tempfile.mkdtemp(prefix="sdfuzz-durable-")
            engine = SDIndex.build(
                data, repulsive=REPULSIVE, attractive=ATTRACTIVE, **LSM_OPTIONS
            )
            self.durable = DurableIndex.create(
                engine, self._durable_dir, fsync="os"
            )
        self.next_row = initial_rows
        #: Ids deleted so far — fodder for the delete-of-tombstone rule.
        self.deleted_rows: list = []

    def close(self) -> None:
        for engine in self.process:
            engine.close()
        if self.durable is not None:
            self.durable.close()
        if self._durable_dir is not None:
            shutil.rmtree(self._durable_dir, ignore_errors=True)

    @property
    def _mutable_engines(self) -> list:
        extra = [self.durable] if self.durable is not None else []
        return [*self.sharded, *self.process, *extra]

    # ------------------------------------------------------------------ ops
    def insert(self) -> None:
        vector = self.rng.random(NUM_DIMS)
        row = self.next_row
        self.next_row += 1
        self.store[row] = vector
        self.flat.insert(vector, row_id=row)
        for engine in self._mutable_engines:
            engine.insert(vector, row_id=row)

    def bulk_insert(self, count: int) -> None:
        matrix = self.rng.random((count, NUM_DIMS))
        rows = list(range(self.next_row, self.next_row + count))
        self.next_row += count
        for row, vector in zip(rows, matrix):
            self.store[row] = vector
        self.flat.bulk_insert(matrix, row_ids=rows)
        for engine in self._mutable_engines:
            engine.bulk_insert(matrix, row_ids=rows)

    def delete(self) -> None:
        if len(self.store) <= 1:
            return
        row = int(self.rng.choice(sorted(self.store)))
        del self.store[row]
        self.flat.delete(row)
        for engine in self._mutable_engines:
            engine.delete(row)
        self.deleted_rows.append(row)

    def bulk_delete(self, count: int) -> None:
        live = sorted(self.store)
        count = min(count, max(len(live) - 1, 0))
        if count == 0:
            return
        rows = [int(r) for r in self.rng.choice(live, size=count, replace=False)]
        for row in rows:
            del self.store[row]
        self.flat.bulk_delete(rows)
        for engine in self._mutable_engines:
            engine.bulk_delete(rows)
        self.deleted_rows.extend(rows)

    def compact(self) -> None:
        """Force LSM structure maintenance at a fuzz-chosen point.

        Flushes the mutable delta and runs a policy-chosen level merge on the
        flat engine (and, when present, through the durable wrapper's
        journaled paths).  Structure ops must never change an answer, so no
        comparison happens here — the next ``check_queries`` sees the world
        re-layered.  The sharded engines run the same maintenance inline via
        their per-shard auto compaction.
        """
        self.flat.flush()
        self.flat.compact()
        if self.durable is not None:
            self.durable.flush()
            self.durable.compact()

    def delete_invalid(self) -> None:
        """The unified contract for bad deletes, checked across every engine.

        Deleting an unknown id or an already-tombstoned id must raise
        ``KeyError`` with the same message on the legacy/flat ``SDIndex`` and
        on every sharded engine, and must leave the population untouched —
        including when the bad id hides inside a ``bulk_delete`` batch (the
        batch must be rejected atomically).
        """
        targets = [self.next_row + 1_000_000]  # never allocated
        if self.deleted_rows:
            targets.append(self.deleted_rows[-1])  # tombstoned earlier
        engines = (
            [("flat", self.flat)]
            + [(f"sharded/{engine.num_shards}", engine) for engine in self.sharded]
            + [(f"process/{engine.num_shards}", engine) for engine in self.process]
            + ([("durable", self.durable)] if self.durable is not None else [])
        )
        live = sorted(self.store)
        for target in targets:
            for label, engine in engines:
                try:
                    engine.delete(target)
                except KeyError as exc:
                    assert f"row id {target} not present" in str(exc), (
                        f"{label} raised a different message: {exc}"
                    )
                else:
                    raise AssertionError(f"{label} delete({target}) did not raise")
                if live:
                    try:
                        engine.bulk_delete([live[0], target])
                    except KeyError:
                        pass
                    else:
                        raise AssertionError(
                            f"{label} bulk_delete with bad id did not raise"
                        )
        self.check_population()

    # ------------------------------------------------------------------ checks
    def oracle(self) -> SequentialScan:
        rows = sorted(self.store)
        return SequentialScan(
            np.asarray([self.store[row] for row in rows], dtype=float),
            REPULSIVE,
            ATTRACTIVE,
            row_ids=rows,
        )

    def check_queries(self, num_queries: int = 3) -> None:
        points = self.rng.random((num_queries, NUM_DIMS))
        ks = self.rng.choice(np.asarray([1, 3, 10]), size=num_queries)
        alphas = self.rng.uniform(0.05, 1.0, size=(num_queries, len(REPULSIVE)))
        betas = self.rng.uniform(0.05, 1.0, size=(num_queries, len(ATTRACTIVE)))
        oracle = self.oracle()
        expected = oracle.batch_query(points, k=ks, alpha=alphas, beta=betas)
        flat_batch = self.flat.batch_query(points, k=ks, alpha=alphas, beta=betas)
        shard_batches = [
            engine.batch_query(points, k=ks, alpha=alphas, beta=betas)
            for engine in self.sharded
        ]
        process_batches = [
            engine.batch_query(points, k=ks, alpha=alphas, beta=betas)
            for engine in self.process
        ]
        durable_batch = (
            self.durable.batch_query(points, k=ks, alpha=alphas, beta=betas)
            if self.durable is not None
            else None
        )
        for j in range(num_queries):
            reference = expected[j]
            spec_query = SDQuery.simple(
                point=points[j],
                repulsive=REPULSIVE,
                attractive=ATTRACTIVE,
                k=int(ks[j]),
                alpha=alphas[j],
                beta=betas[j],
            )
            fast = self.flat.query(spec_query)
            legacy = self.flat.query(spec_query, engine="legacy")
            for label, result in (
                ("flat/batch", flat_batch[j]),
                ("flat/fast", fast),
                ("flat/legacy", legacy),
                *(
                    (f"sharded/{engine.num_shards}", batch[j])
                    for engine, batch in zip(self.sharded, shard_batches)
                ),
                *(
                    (f"process/{engine.num_shards}", batch[j])
                    for engine, batch in zip(self.process, process_batches)
                ),
                *(
                    [("durable", durable_batch[j])]
                    if durable_batch is not None
                    else []
                ),
            ):
                assert result.row_ids == reference.row_ids, (
                    f"{label} rows diverged at query {j}: "
                    f"{result.row_ids} != {reference.row_ids}"
                )
                assert result.scores == reference.scores, (
                    f"{label} scores diverged at query {j}: "
                    f"{result.scores} != {reference.scores}"
                )

    def check_population(self) -> None:
        assert len(self.flat) == len(self.store)
        for engine in self._mutable_engines:
            assert len(engine) == len(self.store)
        self.check_epochs()

    def check_epochs(self) -> None:
        """Maintenance must never leak an epoch or strand a reader pin."""
        sessions = [self.flat._aggregator.serving_session()]
        if self.durable is not None:
            sessions.append(self.durable._engine._aggregator.serving_session())
        for session in sessions:
            assert session.epochs.live_epochs == 1, (
                f"leaked epochs: {session.epochs.live_epochs} live"
            )
            assert session.epochs.pinned_readers == 0


OPS = (
    "insert",
    "bulk_insert",
    "delete",
    "bulk_delete",
    "delete_invalid",
    "compact",
    "query",
)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    initial_rows=st.integers(16, 80),
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=25),
)
def test_fuzzed_interleavings_agree(seed, initial_rows, ops):
    harness = Harness(seed, initial_rows, durable=True)
    try:
        harness.check_queries()
        for op in ops:
            if op == "insert":
                harness.insert()
            elif op == "bulk_insert":
                harness.bulk_insert(int(harness.rng.integers(2, 12)))
            elif op == "delete":
                harness.delete()
            elif op == "bulk_delete":
                harness.bulk_delete(int(harness.rng.integers(2, 8)))
            elif op == "delete_invalid":
                harness.delete_invalid()
            elif op == "compact":
                harness.compact()
            else:
                harness.check_queries()
        harness.check_population()
        harness.check_queries()
    finally:
        harness.close()


def test_thousand_interleaved_updates_stay_identical():
    """The acceptance scenario: 1,000 fuzzed updates, periodic five-way checks.

    With ``flush_rows=24`` a thousand updates over a 400-row world drive
    dozens of flushes and level merges (explicit ones injected every ~150
    updates on top of the inline schedule) — the long-run LSM regression.
    """
    harness = Harness(seed=20260729, initial_rows=400, durable=True)
    try:
        rng = np.random.default_rng(99)
        updates = 0
        while updates < 1000:
            op = rng.integers(0, 4)
            if op == 0:
                harness.insert()
                updates += 1
            elif op == 1:
                count = int(rng.integers(5, 40))
                harness.bulk_insert(count)
                updates += count
            elif op == 2:
                harness.delete()
                updates += 1
            else:
                count = int(rng.integers(5, 25))
                before = len(harness.store)
                harness.bulk_delete(count)
                updates += before - len(harness.store)
            if updates % 150 < 5:
                harness.compact()
            if updates % 100 < 5:
                harness.check_queries(num_queries=2)
                harness.delete_invalid()
        harness.check_population()
        harness.check_queries(num_queries=5)
    finally:
        harness.close()


@pytest.mark.procserve
def test_process_sharded_engines_agree_exactly():
    """2- and 4-worker process fleets join the exact-agreement comparison set.

    The same lockstep harness, now with multi-process engines: every update
    flows through the WAL and is caught up by tail replay in the workers, and
    snapshot flips (checkpoint, rebalance) happen mid-stream — answers must
    stay bit-identical to the flat engine and the sequential-scan oracle
    throughout, including the ``(-score, row_id)`` tie-break order.
    """
    harness = Harness(seed=20260808, initial_rows=120, process_shards=(2, 4))
    try:
        harness.check_queries()
        rng = np.random.default_rng(7)
        for step in range(12):
            op = step % 4
            if op == 0:
                harness.bulk_insert(int(rng.integers(5, 20)))
            elif op == 1:
                harness.delete()
            elif op == 2:
                harness.insert()
            else:
                harness.bulk_delete(int(rng.integers(2, 8)))
            if step % 3 == 0:
                harness.check_queries(num_queries=2)
        harness.delete_invalid()
        # Snapshot flips mid-stream: checkpoint truncates the WAL tail the
        # workers replay from; rebalance reshuffles shard membership.  Both
        # are published as version flips and must not perturb any answer.
        for engine in harness.process:
            engine.checkpoint()
        harness.check_queries(num_queries=3)
        for engine in harness.process:
            engine.rebalance()
        harness.bulk_insert(10)
        harness.check_queries(num_queries=3)
        harness.check_population()
    finally:
        harness.close()
