"""Property tests: tightened upper bounds stay admissible at extreme scales.

PR 10 tightened the verification bounds end-to-end (refined bound grid, leaf
second-pass box bounds, exact-pair-0 re-pruning, pooled sample-seeded
thresholds — see DESIGN.md, "The bound hierarchy").  Every tightening must
remain *admissible*: no true top-k member may ever be pruned.  The risky
regime is large coordinate magnitudes (~1e10), where one float rounding step
is ~1e-6 absolute and the ``_MAGNITUDE_SLACK`` term in the pruning threshold
is what absorbs it.  Hypothesis drives weights and magnitudes across the
flat, LSM-layered and sharded engines; the process engine — too expensive to
fork per example — gets a deterministic large-scale case.

Scores are asserted bit-identical to the sequential-scan oracle; row ids are
asserted only when the k-th/(k+1)-th boundary is unambiguous (an exact tie
there makes the retained set legitimately path-dependent).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.query import SDQuery, sd_scores
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4

#: Coordinate scales spanning the benign regime up to the slack-dominated one.
SCALES = (1.0, 1e6, 1e10)

weight = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)


def _data_and_queries(seed: int, rows: int, scale: float):
    rng = np.random.default_rng(seed)
    data = (rng.random((rows, NUM_DIMS)) - 0.25) * scale
    points = (rng.random((4, NUM_DIMS)) - 0.25) * scale
    return data, points


def _queries(points, ks, alphas, betas):
    return [
        SDQuery.simple(
            point=point,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            k=int(k),
            alpha=list(alphas),
            beta=list(betas),
        )
        for point, k in zip(points, ks)
    ]


def _boundary_is_unambiguous(data, query) -> bool:
    scores = np.sort(sd_scores(data, query))[::-1]
    if query.k >= len(scores):
        return True
    gap = scores[query.k - 1] - scores[query.k]
    return gap > 1e-9 * max(1.0, abs(scores[query.k - 1]))


def _assert_no_topk_member_pruned(engine, data, queries, row_ids=None) -> None:
    oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE, row_ids=row_ids)
    for query in queries:
        got = engine.query(query)
        want = oracle.query(query)
        assert got.scores == want.scores, (got.scores, want.scores)
        if _boundary_is_unambiguous(data, query):
            assert got.row_ids == want.row_ids


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rows=st.integers(min_value=8, max_value=120),
    scale=st.sampled_from(SCALES),
    ks=st.tuples(*[st.integers(min_value=1, max_value=9)] * 4),
    alphas=st.tuples(weight, weight),
    betas=st.tuples(weight, weight),
)
def test_flat_engine_admissible_at_scale(seed, rows, scale, ks, alphas, betas):
    data, points = _data_and_queries(seed, rows, scale)
    engine = SDIndex.build(
        data, repulsive=REPULSIVE, attractive=ATTRACTIVE, compaction="legacy"
    )
    queries = _queries(points, ks, alphas, betas)
    _assert_no_topk_member_pruned(engine, data, queries)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rows=st.integers(min_value=20, max_value=120),
    scale=st.sampled_from(SCALES),
    ks=st.tuples(*[st.integers(min_value=1, max_value=9)] * 4),
    alphas=st.tuples(weight, weight),
    betas=st.tuples(weight, weight),
)
def test_lsm_layered_engine_admissible_at_scale(seed, rows, scale, ks, alphas, betas):
    """Layered worlds: delta + levels, pooled sample thresholds, bound-ordered
    source visits — the cross-source pruning must never drop a true member."""
    data, points = _data_and_queries(seed, rows, scale)
    rng = np.random.default_rng(seed + 1)
    engine = SDIndex.build(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        flush_rows=max(4, rows // 4),
        fanout=2,
        background_compaction=False,
    )
    engine.query(_queries(points, ks, alphas, betas)[0])  # build the session
    # Mutate into a genuinely layered world: inserts into the delta, deletes
    # spread across levels.
    extra_ids = list(range(rows, rows + rows // 2 + 1))
    engine.bulk_insert(
        (rng.random((len(extra_ids), NUM_DIMS)) - 0.25) * scale, row_ids=extra_ids
    )
    victims = sorted(rng.choice(rows, size=rows // 5 + 1, replace=False).tolist())
    engine.bulk_delete(victims)
    with engine.snapshot() as snapshot:
        live_rows, matrix = snapshot.frozen()
    queries = _queries(points, ks, alphas, betas)
    _assert_no_topk_member_pruned(
        engine, matrix, queries, row_ids=[int(r) for r in live_rows]
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rows=st.integers(min_value=12, max_value=120),
    scale=st.sampled_from(SCALES),
    num_shards=st.sampled_from([2, 4]),
    partitioner=st.sampled_from(["hash", "range"]),
    ks=st.tuples(*[st.integers(min_value=1, max_value=9)] * 4),
    alphas=st.tuples(weight, weight),
    betas=st.tuples(weight, weight),
)
def test_sharded_engine_admissible_at_scale(
    seed, rows, scale, num_shards, partitioner, ks, alphas, betas
):
    """Cross-shard pooled thresholds + per-shard tightened bounds: a sample
    from one shard must never prune another shard's true top-k member."""
    data, points = _data_and_queries(seed, rows, scale)
    engine = ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=num_shards,
        partitioner=partitioner,
    )
    try:
        queries = _queries(points, ks, alphas, betas)
        _assert_no_topk_member_pruned(engine, data, queries)
    finally:
        engine.close()


def test_process_engine_admissible_at_magnitude_scale():
    """One deterministic pass through the multi-process engine at 1e10 scale
    (fork-per-example is too heavy for hypothesis)."""
    from repro.core.procserving import ProcessShardedIndex

    data, points = _data_and_queries(seed=1234, rows=300, scale=1e10)
    oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
    with ProcessShardedIndex(
        data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
    ) as engine:
        got = engine.batch_query(points, k=7)
        want = oracle.batch_query(points, k=7)
        for mine, theirs in zip(got.results, want.results):
            assert [(m.row_id, m.score) for m in mine.matches] == [
                (m.row_id, m.score) for m in theirs.matches
            ]
