"""Property tests for the shard-routing invariants of the sharded engine.

Three invariants, each over random data, shard counts and both partitioners:

* **Exactly-one-shard.**  Every live row is owned by exactly one shard — the
  shard aggregators partition the row-id space, the router's assignment map
  agrees with the owners, and inserts/deletes keep it that way.
* **No tombstone leakage.**  Deleting a row tombstones it only in the owning
  shard's maintained session; sessions of other shards never accumulate
  tombstones for rows they do not own.
* **Rebalance preservation.**  ``rebalance()`` may move rows between shards
  but must preserve the full result set bit-for-bit, and reduce skew when the
  layout was skewed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex, ShardRouter

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)


def _build(seed: int, num_rows: int, num_shards: int, partitioner: str) -> ShardedIndex:
    data = np.random.default_rng(seed).random((num_rows, 4))
    return ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=num_shards,
        partitioner=partitioner,
    )


def _live_rows_per_shard(engine: ShardedIndex):
    return [set(engine.shard(s)._live_rows()) for s in range(engine.num_shards)]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_rows=st.integers(10, 200),
    num_shards=st.sampled_from([1, 2, 4, 8]),
    partitioner=st.sampled_from(["hash", "range"]),
)
def test_every_row_lives_in_exactly_one_shard(seed, num_rows, num_shards, partitioner):
    engine = _build(seed, num_rows, num_shards, partitioner)
    rng = np.random.default_rng(seed + 1)
    # Mutate: some inserts and deletes on top of the build.
    inserted = engine.bulk_insert(rng.random((17, 4)))
    engine.delete(inserted[3])
    engine.bulk_delete([inserted[5], inserted[8]])

    shard_rows = _live_rows_per_shard(engine)
    union = set().union(*shard_rows)
    total = sum(len(rows) for rows in shard_rows)
    assert total == len(union), "a row appears in more than one shard"
    assert total == len(engine)
    assignments = engine.router.assignments()
    assert set(assignments) == union
    for shard, rows in enumerate(shard_rows):
        for row in rows:
            assert assignments[row] == shard


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_shards=st.sampled_from([2, 4]),
    partitioner=st.sampled_from(["hash", "range"]),
)
def test_tombstones_never_leak_across_shards(seed, num_shards, partitioner):
    engine = _build(seed, 120, num_shards, partitioner)
    # Materialize every shard's serving session so deletions must patch them.
    engine.batch_query(np.random.default_rng(seed).random((2, 4)), k=1)
    rng = np.random.default_rng(seed + 1)
    victims = [int(r) for r in rng.choice(sorted(engine.router.assignments()),
                                          size=25, replace=False)]
    owners = {row: engine.router.shard_of(row) for row in victims}
    engine.bulk_delete(victims)

    deleted_per_shard = {s: 0 for s in range(engine.num_shards)}
    for row, owner in owners.items():
        deleted_per_shard[owner] += 1
    for s in range(engine.num_shards):
        stats = engine.shard(s).serving_session().maintenance_stats()
        assert stats["patched_deletes"] == deleted_per_shard[s], (
            f"shard {s} tombstoned {stats['patched_deletes']} rows but owns "
            f"{deleted_per_shard[s]} of the deleted ones"
        )
        # The deleted rows must be gone from the owner and never present elsewhere.
        live = set(engine.shard(s)._live_rows())
        assert live.isdisjoint(victims)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_shards=st.sampled_from([2, 4, 8]),
    partitioner=st.sampled_from(["hash", "range"]),
)
def test_rebalance_preserves_the_result_set(seed, num_shards, partitioner):
    engine = _build(seed, 150, num_shards, partitioner)
    rng = np.random.default_rng(seed + 2)
    # Skew the layout: a burst of inserts concentrated in one value region.
    burst = rng.random((120, 4))
    burst[:, ATTRACTIVE[0]] = 0.95 + 0.05 * burst[:, ATTRACTIVE[0]]
    engine.bulk_insert(burst)

    points = rng.random((8, 4))
    ks = rng.choice(np.asarray([1, 10]), size=8)
    before = engine.batch_query(points, k=ks)
    total_before = len(engine)
    assignments_before = engine.router.assignments()

    engine.rebalance()

    assert len(engine) == total_before
    assert set(engine.router.assignments()) == set(assignments_before)
    after = engine.batch_query(points, k=ks)
    for mine, theirs in zip(after, before):
        assert mine.row_ids == theirs.row_ids
        assert mine.scores == theirs.scores


def test_range_rebalance_reduces_skew():
    """A concentrated insert storm skews range shards; rebalance restores balance."""
    engine = _build(seed=7, num_rows=200, num_shards=4, partitioner="range")
    rng = np.random.default_rng(8)
    burst = rng.random((400, 4))
    burst[:, ATTRACTIVE[0]] = 0.9 + 0.1 * burst[:, ATTRACTIVE[0]]
    engine.bulk_insert(burst)
    skew_before = engine.skew()
    assert skew_before > engine.rebalance_threshold
    assert engine.maybe_rebalance()
    assert engine.skew() < skew_before
    assert engine.skew() <= 1.5
    # A balanced engine does not rebalance again.
    assert not engine.maybe_rebalance()


def test_sharded_results_bit_identical_to_flat_engine():
    """The acceptance matrix: k in {1, 10}, shard counts {1, 2, 4, 8}."""
    data = np.random.default_rng(3).random((2000, 4))
    flat = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    rng = np.random.default_rng(4)
    points = rng.random((20, 4))
    for k in (1, 10):
        expected = flat.batch_query(points, k=k)
        for num_shards in (1, 2, 4, 8):
            for partitioner in ("hash", "range"):
                engine = ShardedIndex(
                    data,
                    repulsive=REPULSIVE,
                    attractive=ATTRACTIVE,
                    num_shards=num_shards,
                    partitioner=partitioner,
                )
                batch = engine.batch_query(points, k=k)
                for mine, theirs in zip(batch, expected):
                    assert mine.row_ids == theirs.row_ids
                    assert mine.scores == theirs.scores
                engine.close()


def test_empty_range_engine_grows_from_nothing():
    """A range layout built over no data must accept inserts and rebalance later."""
    engine = ShardedIndex(
        np.empty((0, 4)),
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=4,
        partitioner="range",
    )
    rng = np.random.default_rng(0)
    engine.bulk_insert(rng.random((200, 4)))
    # Everything routed to shard 0 until a rebalance fits quantile boundaries.
    assert engine.shard_sizes()[0] == 200
    query = rng.random((4, 4))
    expected = SDIndex.build(
        np.asarray([engine.point(r) for r in sorted(engine.router.assignments())]),
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
    ).batch_query(query, k=10)
    assert engine.rebalance()
    assert engine.skew() <= 1.5
    batch = engine.batch_query(query, k=10)
    for mine, theirs in zip(batch, expected):
        assert mine.row_ids == theirs.row_ids
        assert mine.scores == theirs.scores


def test_hash_rebalance_disperses_delete_skew():
    """Rebalancing a hash layout reshuffles the salt, so skew actually drops."""
    engine = _build(seed=5, num_rows=400, num_shards=4, partitioner="hash")
    # Concentrate deletes in two shards to skew the layout.
    victims = [
        row
        for row, shard in sorted(engine.router.assignments().items())
        if shard in (1, 2)
    ][:180]
    engine.bulk_delete(victims)
    skew_before = engine.skew()
    assert skew_before > 1.5
    points = np.random.default_rng(6).random((5, 4))
    before = engine.batch_query(points, k=10)
    assert engine.rebalance()
    assert engine.skew() < skew_before
    after = engine.batch_query(points, k=10)
    for mine, theirs in zip(after, before):
        assert mine.row_ids == theirs.row_ids
        assert mine.scores == theirs.scores


def test_bit_identity_survives_magnitude_skew_across_shards():
    """Cross-shard seeded thresholds must stay admissible when one shard's
    coordinates dwarf another's (the slack is scaled by the global magnitude)."""
    rng = np.random.default_rng(11)
    data = rng.random((3000, 4))
    # Range-partitioned dimension spans [0, 1e10]: the top shard's sample
    # scores carry absolute rounding error far above the small shard's ulps.
    data[:, ATTRACTIVE[0]] *= 1e10
    flat = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    points = rng.random((25, 4))
    points[:, ATTRACTIVE[0]] *= 1e10
    for k in (1, 10):
        expected = flat.batch_query(points, k=k)
        for partitioner in ("range", "hash"):
            engine = ShardedIndex(
                data,
                repulsive=REPULSIVE,
                attractive=ATTRACTIVE,
                num_shards=4,
                partitioner=partitioner,
            )
            batch = engine.batch_query(points, k=k)
            for mine, theirs in zip(batch, expected):
                assert mine.row_ids == theirs.row_ids
                assert mine.scores == theirs.scores
            engine.close()


def test_router_rejects_bad_configuration():
    with pytest.raises(ValueError):
        ShardRouter(0)
    with pytest.raises(ValueError):
        ShardRouter(2, partitioner="modulo")
    with pytest.raises(ValueError):
        ShardRouter(2, partitioner="range")  # range_dim required
    router = ShardRouter(4, partitioner="hash")
    with pytest.raises(KeyError):
        router.shard_of(42)


def test_deleted_row_ids_cannot_be_reused():
    engine = _build(seed=1, num_rows=50, num_shards=2, partitioner="hash")
    engine.delete(10)
    with pytest.raises(ValueError):
        engine.insert(np.zeros(4), row_id=10)
    with pytest.raises(ValueError):
        engine.insert(np.zeros(4), row_id=11)  # still present
    with pytest.raises(KeyError):
        engine.delete(10)  # already gone
