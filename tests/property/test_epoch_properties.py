"""Property tests for the epoch snapshot layer (DESIGN.md section 6).

Two contracts, each under hypothesis-driven interleavings:

* **Frozen-copy bit-identity.**  A pinned snapshot's answers must equal — in
  row ids *and* bit-level scores — a sequential scan over a frozen copy of the
  index taken at pin time, no matter which mutations (single/bulk insert,
  single/bulk delete, rebalances on the sharded engine) land afterwards.
* **Refcount drain.**  After an arbitrary interleaving of pin / release /
  publish operations, every retired epoch whose readers released it must be
  reclaimed: ``live_epochs`` returns to 1 and no pins leak.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.epoch import EpochManager
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)

MUTATIONS = ("insert", "bulk_insert", "delete", "bulk_delete")


def _apply_mutations(engine, rng, ops, live, next_row):
    """Apply a random mutation list to any engine with the update surface."""
    for op in ops:
        if op == "insert":
            engine.insert(rng.random(4), row_id=next_row)
            live.append(next_row)
            next_row += 1
        elif op == "bulk_insert":
            count = int(rng.integers(2, 8))
            ids = list(range(next_row, next_row + count))
            engine.bulk_insert(rng.random((count, 4)), row_ids=ids)
            live.extend(ids)
            next_row += count
        elif op == "delete":
            if len(live) > 1:
                victim = live.pop(int(rng.integers(len(live))))
                engine.delete(victim)
        elif op == "bulk_delete":
            if len(live) > 4:
                count = int(rng.integers(2, min(len(live) - 1, 6)))
                victims = [live.pop(int(rng.integers(len(live)))) for _ in range(count)]
                engine.bulk_delete(victims)
    return next_row


def _assert_snapshot_matches_frozen(snapshot_query, frozen_rows, frozen_matrix, rng):
    points = rng.random((4, 4))
    ks = rng.choice(np.asarray([1, 3, 7]), size=4)
    alphas = rng.uniform(0.05, 1.0, size=(4, len(REPULSIVE)))
    betas = rng.uniform(0.05, 1.0, size=(4, len(ATTRACTIVE)))
    got = snapshot_query(points, ks, alphas, betas)
    oracle = SequentialScan(
        frozen_matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in frozen_rows]
    ).batch_query(points, k=ks, alpha=alphas, beta=betas)
    for j in range(4):
        assert got[j].row_ids == oracle[j].row_ids
        assert got[j].scores == oracle[j].scores


class TestFrozenCopyBitIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        ops=st.lists(st.sampled_from(MUTATIONS), min_size=1, max_size=12),
    )
    def test_flat_snapshot_ignores_later_mutations(self, seed, ops):
        rng = np.random.default_rng(seed)
        data = rng.random((60, 4))
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        live = list(range(60))
        with index.snapshot() as snap:
            rows, matrix = snap.frozen()
            _apply_mutations(index, rng, ops, live, 60)
            _assert_snapshot_matches_frozen(
                lambda p, k, a, b: snap.batch_query(p, k=k, alpha=a, beta=b),
                rows,
                matrix,
                rng,
            )
        session = index.query_session()
        report = session.epochs.leak_report()
        assert report["pinned_readers"] == 0
        assert report["live_epochs"] == 1

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        ops=st.lists(st.sampled_from(MUTATIONS), min_size=1, max_size=10),
        num_shards=st.sampled_from([2, 3]),
        rebalance=st.booleans(),
    )
    def test_sharded_snapshot_ignores_later_mutations(
        self, seed, ops, num_shards, rebalance
    ):
        rng = np.random.default_rng(seed)
        data = rng.random((60, 4))
        engine = ShardedIndex(
            data,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=num_shards,
            partitioner="range" if seed % 2 else "hash",
        )
        live = list(range(60))
        try:
            with engine.snapshot() as snap:
                rows, matrix = snap.frozen()
                _apply_mutations(engine, rng, ops, live, 60)
                if rebalance:
                    engine.rebalance()
                _assert_snapshot_matches_frozen(
                    lambda p, k, a, b: snap.batch_query(p, k=k, alpha=a, beta=b),
                    rows,
                    matrix,
                    rng,
                )
            report = engine._topology.leak_report()
            assert report["pinned_readers"] == 0
            assert report["live_epochs"] == 1
            for shard in engine._shards:
                session = shard.serving_session()
                shard_report = session.epochs.leak_report()
                assert shard_report["pinned_readers"] == 0
                assert shard_report["live_epochs"] == 1
        finally:
            engine.close()


class TestRefcountDrain:
    @settings(max_examples=60, deadline=None)
    @given(
        moves=st.lists(
            st.sampled_from(["pin", "release", "publish"]), min_size=1, max_size=40
        )
    )
    def test_arbitrary_interleavings_drain_to_zero(self, moves):
        manager = EpochManager()
        manager.publish(0)
        outstanding = []
        for step, move in enumerate(moves):
            if move == "pin":
                outstanding.append(manager.pin())
            elif move == "release" and outstanding:
                outstanding.pop(len(outstanding) // 2).release()
            elif move == "publish":
                manager.publish(step + 1)
            # Invariant: a live epoch is either current or still pinned.
            assert manager.live_epochs <= 2 + len(outstanding)
            assert manager.pinned_readers == len(outstanding)
        for pin in outstanding:
            pin.release()
        report = manager.leak_report()
        assert report["pinned_readers"] == 0
        assert report["live_epochs"] == 1
        assert report["reclaimed"] == report["published"] - 1
        # The surviving epoch is the current one and still holds its state.
        assert manager.current.state is not None
