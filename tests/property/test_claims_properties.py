"""Property-based checks of the paper's geometric claims (Claims 1-4 and 6)."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    Angle,
    claim1_holds,
    lower_projection_height,
    score_2d,
    score_from_axis,
    upper_projection_height,
)

coordinate = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
degrees = st.floats(min_value=0.0, max_value=90.0, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(px=coordinate, py=coordinate, qx=coordinate, qy=coordinate, angle=degrees)
def test_claim1_implies_non_positive_score(px, py, qx, qy, angle):
    """Claim 1: if q lies between p's projected points the score cannot be positive."""
    a = Angle.from_degrees(angle)
    if claim1_holds(a, px, py, qx, qy):
        assert score_2d(a, px, py, qx, qy) <= 1e-9


@settings(max_examples=200, deadline=None)
@given(px=coordinate, py=coordinate, qx=coordinate, qy=coordinate, angle=degrees)
def test_claims_2_and_3_score_via_projection(px, py, qx, qy, angle):
    """Claims 2-3: the score is always recoverable from the projection heights."""
    a = Angle.from_degrees(angle)
    direct = score_2d(a, px, py, qx, qy)
    via_axis = score_from_axis(a, px, py, qx, qy)
    assert math.isclose(direct, via_axis, abs_tol=1e-7)


@settings(max_examples=100, deadline=None)
@given(
    points=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=40),
    qx=coordinate,
    qy=coordinate,
    k=st.integers(min_value=1, max_value=5),
    angle=degrees,
)
def test_claim4_topk_within_extreme_projections(points, qx, qy, k, angle):
    """Claim 4: the top-k lies among the k highest lower / k lowest upper projections."""
    a = Angle.from_degrees(angle)
    scores = [score_2d(a, px, py, qx, qy) for px, py in points]
    order = sorted(range(len(points)), key=lambda i: -scores[i])
    top_k = set(order[:k])

    lower_heights = [lower_projection_height(a, px, py, qx) for px, py in points]
    upper_heights = [upper_projection_height(a, px, py, qx) for px, py in points]
    k_highest_lower = set(sorted(range(len(points)), key=lambda i: -lower_heights[i])[:k])
    k_lowest_upper = set(sorted(range(len(points)), key=lambda i: upper_heights[i])[:k])
    candidates = k_highest_lower | k_lowest_upper

    # Score-equivalence form of Claim 4: the best k scores within the candidate set
    # are the best k scores overall (identities may swap only between equal scores).
    top_k_scores = sorted((scores[i] for i in top_k), reverse=True)
    candidate_top_scores = sorted((scores[i] for i in candidates), reverse=True)[:k]
    for expected, achieved in zip(top_k_scores, candidate_top_scores):
        assert math.isclose(expected, achieved, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    dy1=coordinate, dx1=coordinate, dy2=coordinate, dx2=coordinate,
    theta1=degrees, theta2=degrees, theta3=degrees,
)
def test_observation2_single_crossover(dy1, dx1, dy2, dx2, theta1, theta2, theta3):
    """Section 4.2, observation 2: the preference between two points flips at most once.

    The observation requires strictly increasing angles: with theta1 == theta2 a
    tie at that angle satisfies both premises without forcing anything at theta3.
    """
    angles = sorted([theta1, theta2, theta3])
    assume(angles[0] < angles[1] - 1e-9)
    a1, a2, a3 = (Angle.from_degrees(d) for d in angles)

    def score(angle, dy, dx):
        return angle.cos * abs(dy) - angle.sin * abs(dx)

    first_prefers_one = score(a1, dy1, dx1) >= score(a1, dy2, dx2)
    second_prefers_two = score(a2, dy2, dx2) >= score(a2, dy1, dx1)
    if first_prefers_one and second_prefers_two:
        assert score(a3, dy2, dx2) >= score(a3, dy1, dx1) - 1e-9
