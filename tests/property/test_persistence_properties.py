"""Property tests: build + update + checkpoint + crash + recover is exact.

Hypothesis drives randomized sequences of ``insert`` / ``delete`` /
``bulk_insert`` / ``bulk_delete`` / ``checkpoint`` against a durable engine,
then "crashes" it by truncating the WAL at a random byte offset and recovers.
The recovered engine's top-k answers must be bit-identical to an in-memory
:class:`SequentialScan` oracle that never crashed and applied exactly the
surviving op prefix (the recovered LSN names it).  Runs across the flat and
sharded{1,2,4} engines and both concurrency modes.

Hypothesis chooses only the shape of the sequence plus a seed; coordinates
come from a numpy generator under that seed, so scores are continuous and
exact ties have probability zero — any divergence is a real defect.
"""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.persistence import WAL_NAME, DurableIndex
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4

ENGINES = [
    ("flat", None, "snapshot"),
    ("flat", None, "unsafe"),
    ("sharded", 1, "snapshot"),
    ("sharded", 2, "snapshot"),
    ("sharded", 2, "unsafe"),
    ("sharded", 4, "snapshot"),
]

op_strategy = st.lists(
    st.sampled_from(["insert", "delete", "bulk_insert", "bulk_delete", "checkpoint"]),
    min_size=4,
    max_size=24,
)


def build_engine(kind, shards, concurrency, data):
    if kind == "flat":
        return SDIndex.build(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, concurrency=concurrency
        )
    return ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=shards,
        partitioner="range" if shards % 2 == 0 else "hash",
        concurrency=concurrency,
    )


def run_scenario(tmp_root, kind, shards, concurrency, ops, seed, crash_fraction):
    rng = np.random.default_rng(seed)
    initial = int(rng.integers(40, 120))
    data = rng.random((initial, NUM_DIMS))
    queries = rng.random((5, NUM_DIMS))
    store = {row: data[row] for row in range(initial)}
    path = tmp_root / "dur"
    if path.exists():
        shutil.rmtree(path)
    engine = build_engine(kind, shards, concurrency, data)
    durable = DurableIndex.create(engine, path)

    # Apply the op script, mirroring every journaled mutation into a parallel
    # history keyed by its WAL lsn.  The lsn must be read *before* the call:
    # a mutation journals first, so it lands at ``end_lsn + 1`` — but the
    # engine may then journal trailing OP_FLUSH/OP_COMPACT maintenance
    # records, which occupy lsns of their own and carry no oracle-visible
    # mutation (regression: counting history entries instead of lsns shifted
    # the surviving prefix by one per maintenance record).
    history = []  # (lsn, [("insert", row, point), ...]) per mutation record
    next_id = initial
    for op in ops:
        if op == "checkpoint":
            durable.checkpoint()
            continue
        live = sorted(store)
        lsn = durable.wal.end_lsn + 1  # where the next mutation record lands
        if op == "insert":
            point = rng.random(NUM_DIMS)
            durable.insert(point, row_id=next_id)
            history.append((lsn, [("insert", next_id, point)]))
            store[next_id] = point
            next_id += 1
        elif op == "bulk_insert":
            count = int(rng.integers(1, 6))
            block = rng.random((count, NUM_DIMS))
            ids = list(range(next_id, next_id + count))
            durable.bulk_insert(block, row_ids=ids)
            history.append(
                (lsn, [("insert", row, block[i]) for i, row in enumerate(ids)])
            )
            for i, row in enumerate(ids):
                store[row] = block[i]
            next_id += count
        elif op == "delete" and len(live) > 1:
            victim = live[int(rng.integers(len(live)))]
            durable.delete(victim)
            history.append((lsn, [("delete", victim, None)]))
            del store[victim]
        elif op == "bulk_delete" and len(live) > 4:
            count = int(rng.integers(1, 4))
            victims = [
                live[int(i)]
                for i in rng.choice(len(live), size=count, replace=False)
            ]
            durable.bulk_delete(victims)
            history.append((lsn, [("delete", row, None) for row in victims]))
            for row in victims:
                del store[row]
    durable.wal.sync()
    durable.close()

    # Crash: truncate the WAL at a drawn byte offset past its header.
    wal_path = path / WAL_NAME
    blob = wal_path.read_bytes()
    header = 16
    cut = header + int(crash_fraction * (len(blob) - header))
    wal_path.write_bytes(blob[:cut])

    recovered = DurableIndex.recover(path)
    surviving = recovered.last_recovery["recovered_lsn"]

    # The uncrashed oracle of exactly the surviving prefix: every mutation
    # whose record lsn survived, regardless of interleaved maintenance lsns.
    population = {row: data[row] for row in range(initial)}
    for lsn, group in history:
        if lsn > surviving:
            break
        for kind_op, row, point in group:
            if kind_op == "insert":
                population[row] = point
            else:
                del population[row]
    rows = sorted(population)
    oracle = SequentialScan(
        np.asarray([population[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    expected = oracle.batch_query(queries, k=5)
    got = recovered.batch_query(queries, k=5)
    for a, b in zip(expected.results, got.results):
        assert [(m.row_id, m.score) for m in a.matches] == [
            (m.row_id, m.score) for m in b.matches
        ], (kind, shards, concurrency, surviving)
    recovered.close()


@pytest.mark.parametrize("kind,shards,concurrency", ENGINES)
@settings(
    max_examples=int(os.environ.get("REPRO_PERSIST_EXAMPLES", "8")),
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=op_strategy,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    crash_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_checkpoint_crash_recover_matches_oracle(
    tmp_path, kind, shards, concurrency, ops, seed, crash_fraction
):
    run_scenario(tmp_path, kind, shards, concurrency, ops, seed, crash_fraction)


def test_recovered_prefix_survives_journaled_maintenance(tmp_path):
    """Deterministic regression for the lsn-vs-history-index confusion.

    This op script makes the engine journal an OP_FLUSH record right before
    the checkpoint (the delta's dead count trips the flush policy), so the
    checkpoint's lsn exceeds the mutation count.  With ``crash_fraction=0``
    the entire post-checkpoint WAL is lost and the oracle must rebuild from
    the checkpointed prefix alone — mapping lsns to history positions 1:1
    used to over-apply one mutation per maintenance record.
    """
    ops = (
        ["insert", "insert"]
        + ["delete"] * 6
        + ["bulk_delete", "bulk_delete", "delete", "checkpoint", "insert"]
    )
    run_scenario(tmp_path, "flat", None, "snapshot", ops, 17417, 0.0)


@pytest.mark.slow
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ops=st.lists(
        st.sampled_from(
            ["insert", "delete", "bulk_insert", "bulk_delete", "checkpoint"]
        ),
        min_size=20,
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    crash_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_exhaustive_sharded_crash_sweep(tmp_path, ops, seed, crash_fraction):
    """Nightly lane: longer scripts on the 4-shard range engine."""
    run_scenario(tmp_path, "sharded", 4, "snapshot", ops, seed, crash_fraction)


def test_mmap_recovery_matches_full_recovery(tmp_path):
    """Both load modes recover to identical answers from the same files."""
    rng = np.random.default_rng(77)
    data = rng.random((150, NUM_DIMS))
    queries = rng.random((6, NUM_DIMS))
    engine = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    durable = DurableIndex.create(engine, tmp_path / "dur")
    for _ in range(15):
        durable.insert(rng.random(NUM_DIMS))
    durable.checkpoint()
    for _ in range(7):
        durable.insert(rng.random(NUM_DIMS))
    durable.close()
    full = DurableIndex.recover(tmp_path / "dur")
    answers_full = full.batch_query(queries, k=5)
    full.close()
    mapped = DurableIndex.recover(tmp_path / "dur", mmap=True)
    answers_mapped = mapped.batch_query(queries, k=5)
    mapped.close()
    for a, b in zip(answers_full.results, answers_mapped.results):
        assert [(m.row_id, m.score) for m in a.matches] == [
            (m.row_id, m.score) for m in b.matches
        ]
