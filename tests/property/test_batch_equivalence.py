"""Property tests: batched execution is exactly equivalent to per-query execution.

For every index the batch path must return the same row ids and bit-identical
scores as (a) a Python loop over the single-query path and (b) the vectorized
sequential-scan oracle.  Row-id equality with the single-query path is only
well defined when the k-th and (k+1)-th best scores differ (the single-query
threshold algorithm resolves an exact boundary tie by traversal order, the
batch engine by row id); the hypothesis tests therefore guard that comparison,
while the seeded continuous-data tests — where exact ties do not occur —
assert unconditionally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.query import SDQuery, sd_scores
from repro.core.sdindex import SDIndex
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.data.generators import generate_dataset
from repro.workloads.workload import make_batch_workload

coordinate = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)
weight = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
point4d = st.tuples(coordinate, coordinate, coordinate, coordinate)


def _boundary_is_unambiguous(data: np.ndarray, query: SDQuery) -> bool:
    """True when the query's k-th and (k+1)-th best full scores clearly differ.

    The small tolerance keeps the check conservative: scores a few ulps apart
    under one formula can tie exactly under an algebraically equal one, and a
    tie at the boundary makes the retained row set legitimately path-dependent.
    """
    scores = np.sort(sd_scores(data, query))[::-1]
    k = query.k
    if k >= len(scores):
        return True
    gap = scores[k - 1] - scores[k]
    return gap > 1e-9 * max(1.0, abs(scores[k - 1]))


def _assert_batch_equals_loop(batch, singles, data, queries) -> None:
    """Exact equivalence, guarding row ids behind the boundary-tie check."""
    assert len(batch) == len(singles)
    for result, single, query in zip(batch, singles, queries):
        assert result.scores == single.scores, (result.scores, single.scores)
        if _boundary_is_unambiguous(data, query):
            assert result.row_ids == single.row_ids, (result.row_ids, single.row_ids)


class TestSDIndexBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(point4d, min_size=2, max_size=40),
        query_points=st.lists(point4d, min_size=1, max_size=6),
        ks=st.lists(st.integers(min_value=1, max_value=7), min_size=6, max_size=6),
        weights=st.tuples(weight, weight, weight, weight),
    )
    def test_batch_matches_loop_and_oracle(self, points, query_points, ks, weights):
        data = np.array(points, dtype=float)
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3],
                              branching=3, leaf_capacity=4)
        queries = [
            SDQuery.simple(list(point), repulsive=[0, 1], attractive=[2, 3],
                           k=ks[j], alpha=weights[:2], beta=weights[2:])
            for j, point in enumerate(query_points)
        ]
        batch = index.batch_query(queries)
        singles = [index.query(query) for query in queries]
        _assert_batch_equals_loop(batch, singles, data, queries)
        oracle = SequentialScan(data, [0, 1], [2, 3]).batch_query(queries)
        for result, expected, query in zip(batch, oracle, queries):
            assert result.scores == expected.scores
            if _boundary_is_unambiguous(data, query):
                assert result.row_ids == expected.row_ids

    @pytest.mark.parametrize("distribution", ["uniform", "clustered", "anticorrelated"])
    @pytest.mark.parametrize("roles", [((0, 1), (2, 3)), ((0, 1, 2), (3,)), ((0,), (1, 2, 3))])
    def test_seeded_batches_are_identical(self, distribution, roles):
        repulsive, attractive = roles
        data = generate_dataset(distribution, 600, 4, seed=7).matrix
        index = SDIndex.build(data, repulsive=repulsive, attractive=attractive)
        workload = make_batch_workload(
            repulsive, attractive, num_queries=12, k=(1, 3, 5, 9),
            num_dims=4, seed=13,
        )
        batch = index.batch_query(workload)
        oracle = SequentialScan(data, repulsive, attractive).batch_query(workload)
        for j, query in enumerate(workload.queries()):
            single = index.query(query)
            assert batch[j].row_ids == oracle[j].row_ids
            assert batch[j].scores == single.scores == oracle[j].scores
            if _boundary_is_unambiguous(data, query):
                assert batch[j].row_ids == single.row_ids

    def test_mixed_k_and_per_query_weights(self):
        rng = np.random.default_rng(42)
        data = rng.random((500, 5))
        repulsive, attractive = (0, 2), (1, 3, 4)
        index = SDIndex.build(data, repulsive=repulsive, attractive=attractive)
        points = rng.random((15, 5))
        ks = rng.integers(1, 12, size=15)
        alpha = rng.uniform(0.1, 3.0, size=(15, 2))
        beta = rng.uniform(0.1, 3.0, size=(15, 3))
        batch = index.batch_query(points, k=ks, alpha=alpha, beta=beta)
        for j in range(15):
            query = SDQuery.simple(points[j], repulsive, attractive, k=int(ks[j]),
                                   alpha=alpha[j], beta=beta[j])
            single = index.query(query)
            assert batch[j].row_ids == single.row_ids
            assert batch[j].scores == single.scores

    def test_scrambled_role_order_stays_bit_identical(self):
        """Queries may list role dimensions in any order; the batch path must
        accumulate score terms in each query's own order (float addition is
        order-sensitive) to stay bit-identical with the sequential path."""
        rng = np.random.default_rng(11)
        data = rng.random((400, 4))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        queries = [
            SDQuery.simple(rng.random(4), [1, 0], [3, 2], k=5,
                           alpha=rng.uniform(0.1, 2, 2), beta=rng.uniform(0.1, 2, 2))
            for _ in range(10)
        ]
        batch = index.batch_query(queries)
        oracle = SequentialScan(data, [0, 1], [2, 3]).batch_query(queries)
        for j, query in enumerate(queries):
            single = index.query(query)
            assert batch[j].scores == single.scores == oracle[j].scores
            assert batch[j].row_ids == single.row_ids == oracle[j].row_ids

    def test_permuted_batch_workload_roles_stay_bit_identical(self):
        """A BatchWorkload may declare roles in a different order than the
        index; scoring must still follow the workload's term order."""
        from repro.workloads.workload import BatchWorkload

        rng = np.random.default_rng(17)
        data = rng.random((300, 4))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        workload = BatchWorkload(
            points=rng.random((8, 4)), ks=np.full(8, 4),
            alphas=rng.uniform(0.1, 2, (8, 2)), betas=rng.uniform(0.1, 2, (8, 2)),
            repulsive=(1, 0), attractive=(3, 2),
        )
        batch = index.batch_query(workload)
        for j, query in enumerate(workload.queries()):
            single = index.query(query)
            assert batch[j].scores == single.scores
            assert batch[j].row_ids == single.row_ids

    def test_large_coordinate_magnitudes_stay_exact(self):
        """Intercept arithmetic at huge coordinates (epoch-timestamp scale)
        cancels catastrophically; the magnitude-aware pruning slack must keep
        every true answer in the candidate set."""
        rng = np.random.default_rng(0)
        data = 1e10 + rng.random((400, 4))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        points = 1e10 + rng.random((10, 4))
        batch = index.batch_query(points, k=5)
        tk = TopKIndex(data[:, 0], data[:, 1])
        tk_batch = tk.batch_query(points[:, 0], points[:, 1], k=5)
        for j in range(10):
            single = index.query(points[j], k=5)
            assert batch[j].row_ids == single.row_ids
            assert batch[j].scores == single.scores
            tk_single = tk.query(points[j, 0], points[j, 1], k=5)
            assert tk_batch[j].row_ids == tk_single.row_ids
            assert tk_batch[j].scores == tk_single.scores

    def test_k_larger_than_dataset(self):
        rng = np.random.default_rng(3)
        data = rng.random((8, 4))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        batch = index.batch_query(rng.random((3, 4)), k=50)
        for result in batch:
            assert len(result) == len(data)

    def test_session_is_maintained_across_updates(self):
        rng = np.random.default_rng(4)
        data = rng.random((50, 4))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        session = index.query_session()
        session.run(rng.random((2, 4)), k=3)
        row = index.insert(np.full(4, 10.0))
        # The session sees the update without a rebuild: a far-away point
        # dominates a pure-repulsive-leaning query immediately.
        points = rng.random((2, 4))
        patched = session.run(points, k=3)
        oracle = SequentialScan(
            np.vstack([data, index.point(row)[None, :]]), [0, 1], [2, 3]
        ).batch_query(points, k=3)
        for j in range(2):
            assert patched[j].row_ids == oracle[j].row_ids
            assert patched[j].scores == oracle[j].scores


class TestTopKIndexBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=40),
        query_points=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=5),
        k=st.integers(min_value=1, max_value=6),
        alpha=weight,
        beta=weight,
    )
    def test_batch_matches_loop(self, points, query_points, k, alpha, beta):
        data = np.array(points, dtype=float)
        index = TopKIndex(data[:, 0], data[:, 1], branching=3, leaf_capacity=4)
        qx = np.array([q[0] for q in query_points])
        qy = np.array([q[1] for q in query_points])
        batch = index.batch_query(qx, qy, k=k, alpha=alpha, beta=beta)
        queries = [
            SDQuery.simple([q[0], q[1]], repulsive=[1], attractive=[0], k=k,
                           alpha=alpha, beta=beta)
            for q in query_points
        ]
        singles = [index.query(q[0], q[1], k=k, alpha=alpha, beta=beta)
                   for q in query_points]
        _assert_batch_equals_loop(batch, singles, data, queries)

    def test_hypot_rounding_weight_pair_stays_bit_identical(self):
        """np.hypot and math.hypot round a small fraction of inputs differently;
        the batch path must normalize through the same Angle/math.hypot code as
        the sequential path.  This weight pair is one of the divergent inputs."""
        rng = np.random.default_rng(6)
        data = rng.random((300, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        alpha, beta = 5.545364116710945, 5.124870802201387
        qx, qy = rng.random(5), rng.random(5)
        batch = index.batch_query(qx, qy, k=5, alpha=alpha, beta=beta)
        for j in range(5):
            single = index.query(qx[j], qy[j], k=5, alpha=alpha, beta=beta)
            assert batch[j].scores == single.scores
            assert batch[j].row_ids == single.row_ids

    def test_seeded_batch_identical(self):
        rng = np.random.default_rng(11)
        data = rng.random((800, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        qx, qy = rng.random(25), rng.random(25)
        alpha, beta = rng.uniform(0.1, 2, 25), rng.uniform(0.1, 2, 25)
        ks = rng.integers(1, 10, size=25)
        batch = index.batch_query(qx, qy, k=ks, alpha=alpha, beta=beta)
        for j in range(25):
            single = index.query(qx[j], qy[j], k=int(ks[j]),
                                 alpha=float(alpha[j]), beta=float(beta[j]))
            assert batch[j].row_ids == single.row_ids
            assert batch[j].scores == single.scores


class TestTop1IndexBatchEquivalence:
    """Top-1 batch results are identical to loops in every case, ties included:
    both paths select with the deterministic ``(-score, row_id)`` order."""

    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=30),
        query_points=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=5),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_batch_matches_loop(self, points, query_points, k):
        data = np.array(points, dtype=float)
        index = Top1Index(data[:, 0], data[:, 1], k=k)
        qx = np.array([q[0] for q in query_points])
        qy = np.array([q[1] for q in query_points])
        batch = index.batch_query(qx, qy)
        for j, (x, y) in enumerate(query_points):
            single = index.query(x, y)
            assert batch[j].row_ids == single.row_ids
            assert batch[j].scores == single.scores

    def test_batch_with_pending_inserts(self):
        rng = np.random.default_rng(5)
        data = rng.random((100, 2))
        index = Top1Index(data[:, 0], data[:, 1], k=3)
        for point in rng.random((10, 2)):
            index.insert(point[0], point[1])
        qx, qy = rng.random(8), rng.random(8)
        batch = index.batch_query(qx, qy, k=2)
        for j in range(8):
            single = index.query(qx[j], qy[j], k=2)
            assert batch[j].row_ids == single.row_ids
            assert batch[j].scores == single.scores


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("distribution", ["uniform", "clustered", "anticorrelated", "correlated"])
def test_exhaustive_seeded_batch_equivalence(distribution, seed):
    """Nightly lane: many seeds and shapes; fast lane runs the suites above."""
    rng = np.random.default_rng(100 + seed)
    num_dims = int(rng.integers(2, 7))
    dims = list(rng.permutation(num_dims))
    split = int(rng.integers(1, num_dims)) if num_dims > 1 else 1
    repulsive, attractive = tuple(dims[:split]), tuple(dims[split:])
    data = generate_dataset(distribution, int(rng.integers(50, 1200)), num_dims,
                            seed=seed).matrix
    index = SDIndex.build(data, repulsive=repulsive, attractive=attractive)
    workload = make_batch_workload(repulsive, attractive, num_queries=10,
                                   k=(1, 2, 5, 8), num_dims=num_dims, seed=seed)
    batch = index.batch_query(workload)
    oracle = SequentialScan(data, repulsive, attractive).batch_query(workload)
    for j, query in enumerate(workload.queries()):
        single = index.query(query)
        # Both batch paths break boundary ties identically, so they always agree.
        assert batch[j].row_ids == oracle[j].row_ids
        assert batch[j].scores == single.scores == oracle[j].scores
        if _boundary_is_unambiguous(data, query):
            assert batch[j].row_ids == single.row_ids
