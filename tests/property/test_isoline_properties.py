"""Property-based tests (hypothesis) for the isoline envelope machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Angle
from repro.core.isoline import EnvelopeSide, build_envelope, peel_envelope_layers, tent_height, vee_height

coordinate = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
point_list = st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=60)
angle_degrees = st.floats(min_value=0.0, max_value=90.0, allow_nan=False)
axis_value = st.floats(min_value=-150.0, max_value=150.0, allow_nan=False)


@settings(max_examples=120, deadline=None)
@given(points=point_list, degrees=angle_degrees, axis=axis_value)
def test_lower_envelope_owner_is_never_beaten(points, degrees, axis):
    """The reported owner's tent is within epsilon of the maximum tent at any axis."""
    angle = Angle.from_degrees(degrees)
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    envelope = build_envelope(xs, ys, angle, EnvelopeSide.LOWER_PROJECTIONS)
    owner = envelope.owner_at(axis)
    owner_height = tent_height(angle, xs[owner], ys[owner], axis)
    best = max(tent_height(angle, px, py, axis) for px, py in points)
    assert owner_height >= best - 1e-7


@settings(max_examples=120, deadline=None)
@given(points=point_list, degrees=angle_degrees, axis=axis_value)
def test_upper_envelope_owner_is_never_beaten(points, degrees, axis):
    angle = Angle.from_degrees(degrees)
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    envelope = build_envelope(xs, ys, angle, EnvelopeSide.UPPER_PROJECTIONS)
    owner = envelope.owner_at(axis)
    owner_height = vee_height(angle, xs[owner], ys[owner], axis)
    best = min(vee_height(angle, px, py, axis) for px, py in points)
    assert owner_height <= best + 1e-7


@settings(max_examples=100, deadline=None)
@given(points=point_list, degrees=angle_degrees)
def test_envelope_breakpoints_sorted_and_linear_size(points, degrees):
    """Claim 5: at most one region per point, with sorted boundaries."""
    angle = Angle.from_degrees(degrees)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    envelope = build_envelope(xs, ys, angle)
    assert len(envelope.owners) <= len(points)
    assert len(set(envelope.owners)) == len(envelope.owners)
    assert envelope.breakpoints == sorted(envelope.breakpoints)


@settings(max_examples=60, deadline=None)
@given(points=point_list, degrees=angle_degrees, layers=st.integers(min_value=1, max_value=5))
def test_peeled_layers_partition_their_owners(points, degrees, layers):
    angle = Angle.from_degrees(degrees)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    peeled = peel_envelope_layers(xs, ys, angle, layers)
    seen = set()
    for layer in peeled:
        owners = set(layer.owners)
        assert not owners & seen
        seen |= owners
    assert len(seen) <= len(points)
