"""Property-based tests: every index agrees with the exact sequential scan."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex

coordinate = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
weight = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
point2d = st.tuples(coordinate, coordinate)


def _scores_match(result, expected, tol=1e-6):
    mine = sorted(result.scores, reverse=True)
    theirs = sorted(expected.scores, reverse=True)
    assert len(mine) == len(theirs)
    for a, b in zip(mine, theirs):
        assert abs(a - b) <= tol * max(1.0, abs(b))


@settings(max_examples=60, deadline=None)
@given(
    points=st.lists(point2d, min_size=1, max_size=50),
    query=point2d,
    k=st.integers(min_value=1, max_value=8),
    alpha=weight,
    beta=weight,
)
def test_topk_index_matches_oracle(points, query, k, alpha, beta):
    data = np.array(points, dtype=float)
    index = TopKIndex(data[:, 0], data[:, 1], branching=3, leaf_capacity=4)
    sd_query = SDQuery.simple(list(query), repulsive=[1], attractive=[0], k=k,
                              alpha=alpha, beta=beta)
    expected = SequentialScan(data, [1], [0]).query(sd_query)
    result = index.query(query[0], query[1], k=k, alpha=alpha, beta=beta)
    _scores_match(result, expected)


@settings(max_examples=40, deadline=None)
@given(
    points=st.lists(point2d, min_size=1, max_size=40),
    query=point2d,
    k=st.integers(min_value=1, max_value=4),
)
def test_top1_index_matches_oracle(points, query, k):
    data = np.array(points, dtype=float)
    index = Top1Index(data[:, 0], data[:, 1], k=k)
    sd_query = SDQuery.simple(list(query), repulsive=[1], attractive=[0], k=k)
    expected = SequentialScan(data, [1], [0]).query(sd_query)
    result = index.query(query[0], query[1], k=k)
    _scores_match(result, expected)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.tuples(coordinate, coordinate, coordinate, coordinate), min_size=2, max_size=40),
    query=st.tuples(coordinate, coordinate, coordinate, coordinate),
    k=st.integers(min_value=1, max_value=6),
    weights=st.tuples(weight, weight, weight, weight),
)
def test_sdindex_matches_oracle_4d(data, query, k, weights):
    matrix = np.array(data, dtype=float)
    index = SDIndex.build(matrix, repulsive=[0, 1], attractive=[2, 3],
                          branching=3, leaf_capacity=4)
    sd_query = SDQuery.simple(list(query), repulsive=[0, 1], attractive=[2, 3], k=k,
                              alpha=weights[:2], beta=weights[2:])
    expected = SequentialScan(matrix, [0, 1], [2, 3]).query(sd_query)
    _scores_match(index.query(sd_query), expected)


@settings(max_examples=30, deadline=None)
@given(
    points=st.lists(point2d, min_size=2, max_size=30, unique=True),
    query=point2d,
    deletions=st.data(),
)
def test_topk_index_consistent_under_deletions(points, query, deletions):
    data = np.array(points, dtype=float)
    index = TopKIndex(data[:, 0], data[:, 1], branching=3, leaf_capacity=4)
    num_deletions = deletions.draw(st.integers(min_value=0, max_value=len(points) - 1))
    victims = deletions.draw(
        st.lists(st.sampled_from(range(len(points))), min_size=num_deletions,
                 max_size=num_deletions, unique=True)
    )
    for victim in victims:
        index.delete(victim)
    remaining = np.delete(data, victims, axis=0)
    sd_query = SDQuery.simple(list(query), repulsive=[1], attractive=[0], k=3)
    expected = SequentialScan(remaining, [1], [0]).query(sd_query)
    result = index.query(query[0], query[1], k=3)
    _scores_match(result, expected)
