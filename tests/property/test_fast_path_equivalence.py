"""Property tests for the flattened-array single-query fast path.

The fast path (``SDIndex.query`` default, ``TopKIndex`` ``"flat"`` strategy)
must return bit-identical scores to the legacy threshold traversal and to the
``SequentialScan`` oracle, and must stay exact while the cached query session
is patched in place by interleaved ``insert``/``delete``/``bulk_insert``/
``bulk_delete`` sequences — including across threshold-triggered
reflattening.  Row-id equality with the legacy path is guarded by the usual
boundary-tie check (the legacy traversal resolves an exact tie at the k-th
boundary by traversal order, the fast path by row id); on the continuous
seeded datasets ties do not occur and the tests assert unconditionally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.topk import TopKIndex
from repro.data.generators import generate_dataset
from tests.conftest import assert_same_scores
from tests.property.test_batch_equivalence import _boundary_is_unambiguous

coordinate = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)
weight = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
point4d = st.tuples(coordinate, coordinate, coordinate, coordinate)


def _oracle(data, rows, query):
    matrix = np.asarray(data, dtype=float)
    return SequentialScan(matrix, query.repulsive, query.attractive, row_ids=rows).query(query)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("distribution", ["uniform", "clustered", "anticorrelated"])
    @pytest.mark.parametrize("roles", [((0, 1), (2, 3)), ((0, 1, 2), (3,)), ((0,), (1, 2, 3))])
    def test_fast_matches_legacy_and_oracle_seeded(self, distribution, roles):
        repulsive, attractive = roles
        data = generate_dataset(distribution, 500, 4, seed=17).matrix
        index = SDIndex.build(data, repulsive=repulsive, attractive=attractive)
        rng = np.random.default_rng(18)
        for k in (1, 3, 8):
            query = SDQuery.simple(rng.random(4), repulsive, attractive, k=k,
                                   alpha=rng.uniform(0.1, 2, len(repulsive)),
                                   beta=rng.uniform(0.1, 2, len(attractive)))
            fast = index.query(query)
            legacy = index.query(query, engine="legacy")
            oracle = _oracle(data, list(range(len(data))), query)
            assert fast.scores == legacy.scores
            assert fast.scores == oracle.scores
            assert fast.row_ids == oracle.row_ids
            assert fast.row_ids == legacy.row_ids

    @settings(max_examples=25, deadline=None)
    @given(
        points=st.lists(point4d, min_size=2, max_size=40),
        query_point=point4d,
        k=st.integers(min_value=1, max_value=7),
        weights=st.tuples(weight, weight, weight, weight),
    )
    def test_fast_matches_legacy_hypothesis(self, points, query_point, k, weights):
        data = np.array(points, dtype=float)
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3],
                              branching=3, leaf_capacity=4)
        query = SDQuery.simple(list(query_point), repulsive=[0, 1], attractive=[2, 3],
                               k=k, alpha=weights[:2], beta=weights[2:])
        fast = index.query(query)
        legacy = index.query(query, engine="legacy")
        assert fast.scores == legacy.scores
        if _boundary_is_unambiguous(data, query):
            assert fast.row_ids == legacy.row_ids

    def test_fast_path_prunes(self):
        data = generate_dataset("uniform", 4000, 4, seed=3).matrix
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        result = index.query(data[7], k=5)
        assert result.algorithm == "sd-index/fast"
        assert 0 < result.full_evaluations < len(data)

    def test_unknown_engine_rejected(self):
        data = np.random.default_rng(0).random((50, 4))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
        with pytest.raises(ValueError):
            index.query(data[0], k=1, engine="magic")


class TestSessionMaintenance:
    def test_interleaved_updates_patch_in_place(self):
        rng = np.random.default_rng(41)
        base = rng.random((400, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        session = index.query_session()
        live = {i: base[i] for i in range(len(base))}
        for step in range(120):
            if rng.random() < 0.5 or len(live) < 50:
                point = rng.random(4)
                live[index.insert(point)] = point
            else:
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]
            if step % 20 == 0:
                rows = list(live)
                matrix = np.array([live[r] for r in rows])
                query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=6,
                                       alpha=rng.uniform(0.1, 2, 2),
                                       beta=rng.uniform(0.1, 2, 2))
                fast = index.query(query)
                legacy = index.query(query, engine="legacy")
                oracle = _oracle(matrix, rows, query)
                assert fast.scores == legacy.scores == oracle.scores
                assert fast.row_ids == oracle.row_ids
        # 120 updates on 400 points stay under the 25% garbage threshold only
        # at first; whatever happened, every patched answer above was exact and
        # the session was never *stale* (patched or reflattened, never wrong).
        stats = session.maintenance_stats()
        assert stats["patched_inserts"] + stats["patched_deletes"] > 0

    def test_bulk_insert_and_bulk_delete_match_loop_semantics(self):
        rng = np.random.default_rng(42)
        base = rng.random((200, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        session = index.query_session()
        extra = rng.random((60, 4))
        ids = index.bulk_insert(extra)
        assert ids == list(range(200, 260))
        assert len(index) == 260
        index.bulk_delete(list(range(0, 40)))
        assert len(index) == 220
        assert session.patched_inserts == 60 and session.patched_deletes == 40

        rows = list(range(40, 260))
        matrix = np.vstack([base[40:], extra])
        query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=9)
        fast = index.query(query)
        oracle = _oracle(matrix, rows, query)
        assert fast.scores == oracle.scores
        assert fast.row_ids == oracle.row_ids
        # Against a from-scratch rebuild, the batch engines agree exactly.
        rebuilt = SDIndex.build(matrix, repulsive=[0, 1], attractive=[2, 3], row_ids=rows)
        expected = rebuilt.query(query)
        assert fast.scores == expected.scores
        assert fast.row_ids == expected.row_ids

    @pytest.mark.parametrize("roles", [((0, 1, 2), (3,)), ((0,), (1, 2, 3))])
    def test_bulk_insert_keeps_leftover_columns_sorted(self, roles):
        """Regression: splicing a same-gap, descending-valued bulk insert into
        the session's sorted columns must presort the batch, or every
        searchsorted probe afterwards sees an unsorted array and the fast path
        silently drops true answers."""
        repulsive, attractive = roles
        rng = np.random.default_rng(46)
        # A deliberate value gap in every dimension around (0.4, 0.6).
        base = rng.random((300, 4))
        base = np.where((base > 0.4) & (base < 0.6), base - 0.4, base)
        # The splice under test is the legacy in-place patch path; LSM
        # sessions absorb inserts into the delta and never splice.
        index = SDIndex.build(
            base, repulsive=repulsive, attractive=attractive, compaction="legacy"
        )
        session = index.query_session()
        # Two batches landing inside the gap in descending order.
        index.bulk_insert(np.full((1, 4), 0.52))
        index.bulk_insert(np.vstack([np.full(4, 0.55), np.full(4, 0.48)]))
        for dim, values in session._col_values.items():
            assert np.all(np.diff(values) >= 0), f"column {dim} unsorted"
        rows = list(range(303))
        matrix = np.vstack([base, np.full((1, 4), 0.52),
                            np.full((1, 4), 0.55), np.full((1, 4), 0.48)])
        for target in (0.47, 0.50, 0.53, 0.56):
            query = SDQuery.simple([target] * 4, repulsive, attractive, k=3)
            fast = index.query(query)
            oracle = _oracle(matrix, rows, query)
            assert fast.scores == oracle.scores
            legacy = index.query(query, engine="legacy")
            assert fast.scores == legacy.scores

    def test_bulk_insert_validation(self):
        rng = np.random.default_rng(43)
        index = SDIndex.build(rng.random((30, 4)), repulsive=[0, 1], attractive=[2, 3])
        with pytest.raises(ValueError):
            index.bulk_insert(rng.random((3, 2)))
        with pytest.raises(ValueError):
            index.bulk_insert(rng.random((2, 4)), row_ids=[100, 100])
        with pytest.raises(ValueError):
            index.bulk_insert(rng.random((2, 4)), row_ids=[5, 200])  # 5 exists
        with pytest.raises(KeyError):
            index.bulk_delete([5, 9999])
        # Failed validation must not have mutated anything.
        assert len(index) == 30
        index.query(rng.random(4), k=3)

    def test_threshold_triggers_reflatten_and_stays_exact(self):
        rng = np.random.default_rng(44)
        base = rng.random((150, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        aggregator = index.aggregator
        from repro.core.batch import QuerySession

        session = QuerySession(aggregator, reflatten_threshold=0.05)
        live = {i: base[i] for i in range(len(base))}
        # 30 updates >> 5% of 150: the garbage threshold must trip.
        for _ in range(15):
            point = rng.random(4)
            live[index.insert(point)] = point
        for victim in range(15):
            index.delete(victim)
            del live[victim]
        assert session.needs_reflatten
        rows = list(live)
        matrix = np.array([live[r] for r in rows])
        points = rng.random((5, 4))
        batch = session.run(points, k=4)
        assert session.reflattens == 1
        assert not session.needs_reflatten
        oracle = SequentialScan(matrix, [0, 1], [2, 3], row_ids=rows).batch_query(points, k=4)
        for j in range(5):
            assert batch[j].row_ids == oracle[j].row_ids
            assert batch[j].scores == oracle[j].scores
        # ...and the session keeps being patched after the reflatten (patches
        # that arrive while the session is dirty are skipped, not counted).
        patched_before = session.patched_inserts
        new_row = index.insert(rng.random(4))
        live[new_row] = index.point(new_row)
        assert session.patched_inserts == patched_before + 1

    def test_empty_index_grows_through_patches(self):
        index = SDIndex.build(np.empty((0, 4)), repulsive=[0, 1], attractive=[2, 3])
        assert len(index.query([0.5] * 4, k=3)) == 0
        rng = np.random.default_rng(45)
        points = rng.random((20, 4))
        index.bulk_insert(points)
        query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=4)
        fast = index.query(query)
        oracle = _oracle(points, list(range(20)), query)
        assert fast.scores == oracle.scores
        assert fast.row_ids == oracle.row_ids


class TestTopKFlatFastPath:
    def test_flat_matches_streams_and_oracle(self):
        rng = np.random.default_rng(51)
        data = rng.random((600, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        for _ in range(10):
            qx, qy = rng.random(2)
            alpha, beta = rng.uniform(0.05, 2.0, size=2)
            flat = index.query(qx, qy, k=6, alpha=alpha, beta=beta)
            streams = index.query(qx, qy, k=6, alpha=alpha, beta=beta, strategy="streams")
            assert flat.algorithm == "sd-topk/flat"
            # Bit-identical to the streams strategy (same normalized-then-
            # scaled arithmetic); the raw-weight oracle differs by ulps.
            assert flat.scores == streams.scores
            assert flat.row_ids == streams.row_ids
            query = SDQuery.simple([qx, qy], [1], [0], k=6, alpha=alpha, beta=beta)
            assert_same_scores(flat, _oracle(data, list(range(len(data))), query))

    def test_flat_view_is_patched_across_updates(self):
        rng = np.random.default_rng(52)
        data = rng.random((300, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        index.query(0.5, 0.5, k=3)  # builds the flat view
        live = {i: tuple(data[i]) for i in range(len(data))}
        for step in range(40):
            if step % 2 == 0:
                x, y = rng.random(2)
                live[index.insert(x, y)] = (x, y)
            else:
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]
        assert index.session_reflattens == 0
        rows = list(live)
        matrix = np.array([live[r] for r in rows])
        qx, qy = rng.random(2)
        flat = index.query(qx, qy, k=8)
        streams = index.query(qx, qy, k=8, strategy="streams")
        assert flat.scores == streams.scores
        assert flat.row_ids == streams.row_ids
        query = SDQuery.simple([qx, qy], [1], [0], k=8)
        assert_same_scores(flat, _oracle(matrix, rows, query))

    def test_degenerate_weights_fall_back(self):
        rng = np.random.default_rng(53)
        data = rng.random((100, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        # alpha == 0 is legal for the streams merge but not the batch kernels.
        result = index.query(0.5, 0.5, k=3, alpha=0.0, beta=1.0)
        assert len(result) == 3
