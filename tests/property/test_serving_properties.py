"""Property tests for the serving front end (DESIGN.md section 8).

The contract under hypothesis-driven interleavings of requests, flushes and
index mutations:

* **Per-epoch bit-identity.**  Every served response must equal — row ids
  *and* bit-level scores — a :class:`SequentialScan` over the population
  that was live at the epoch the response reports.  This subsumes cache
  correctness: a cache entry served across an epoch publication would carry
  the *new* epoch label with *old* answers and the oracle would catch it.
* **Cache hits never cross epochs.**  Directly: a response flagged
  ``cached`` must report an epoch at which the same query was previously
  served fresh.
* **No leaked pins.**  After every interleaving the engine's epoch ledger
  drains to zero pinned readers.
"""

from __future__ import annotations

import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.serving.cache import ResultCache
from repro.serving.coalescer import TickCoalescer, query_key

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)

# An op is one of: submit a query (with a derived seed), flush the pending
# batch, insert a fresh row, or delete a live row.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, 9)),
        st.tuples(st.just("flush"), st.just(0)),
        st.tuples(st.just("insert"), st.integers(0, 2**16)),
        st.tuples(st.just("delete"), st.integers(0, 2**16)),
    ),
    min_size=4,
    max_size=24,
)


def _make_query(seed: int) -> SDQuery:
    rng = np.random.default_rng(seed)
    return SDQuery.simple(
        point=rng.uniform(0, 1, size=4),
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        k=int(rng.integers(1, 6)),
        alpha=rng.uniform(0.1, 1.0, size=2),
        beta=rng.uniform(0.1, 1.0, size=2),
    )


def _record_population(index, populations):
    """Remember the live population at the index's current epoch."""
    with index.snapshot() as snap:
        rows, matrix = snap.frozen()
        populations[snap.version] = (
            [int(r) for r in rows],
            np.array(matrix, copy=True),
        )


class TestServingInterleavings:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), ops=OPS)
    def test_every_response_matches_the_oracle_at_its_epoch(self, seed, ops):
        rng = np.random.default_rng(seed)
        data = rng.uniform(0, 1, size=(50, 4))
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        populations = {}
        _record_population(index, populations)
        live = list(range(50))
        next_row = 50

        async def scenario():
            nonlocal next_row
            cache = ResultCache(capacity=32)
            coalescer = TickCoalescer(index, tick_seconds=None, cache=cache)
            in_flight = []  # (query, future)
            for op, arg in ops:
                if op == "query":
                    query = _make_query(seed ^ (arg * 0x9E37))
                    in_flight.append(
                        (query, asyncio.ensure_future(coalescer.submit(query)))
                    )
                    await asyncio.sleep(0)  # let the submit enqueue
                elif op == "flush":
                    await coalescer.flush()
                elif op == "insert":
                    index.insert(rng.uniform(0, 1, size=4), row_id=next_row)
                    live.append(next_row)
                    next_row += 1
                    _record_population(index, populations)
                else:  # delete
                    if len(live) > 2:
                        victim = live.pop(arg % len(live))
                        index.delete(victim)
                        _record_population(index, populations)
            await coalescer.flush()
            served = []
            for query, future in in_flight:
                served.append((query, await future))
            await coalescer.close()
            return served

        served = asyncio.run(scenario())

        fresh_epochs = {}  # query_key -> set of epochs served without the cache
        for query, response in served:
            rows, matrix = populations[response.epoch]
            oracle = SequentialScan(
                matrix, REPULSIVE, ATTRACTIVE, row_ids=rows
            ).query(query)
            assert response.result.row_ids == oracle.row_ids
            assert response.result.scores == oracle.scores
            key = query_key(query)
            if response.cached:
                # A hit must come from a fresh answer at the *same* epoch —
                # never from an entry written before a publication.
                assert response.epoch in fresh_epochs.get(key, set())
            else:
                fresh_epochs.setdefault(key, set()).add(response.epoch)

        report = index.query_session().epochs.leak_report()
        assert report["pinned_readers"] == 0
        assert report["live_epochs"] == 1
