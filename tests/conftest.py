"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.query import SDQuery


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide seeded generator for tests that just need 'some' randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_2d_dataset() -> np.ndarray:
    """A small fixed 2D dataset reused by several index tests."""
    generator = np.random.default_rng(7)
    return generator.random((400, 2))


@pytest.fixture
def small_4d_dataset() -> np.ndarray:
    """A small fixed 4D dataset (two repulsive, two attractive dimensions)."""
    generator = np.random.default_rng(11)
    return generator.random((600, 4))


def oracle_topk(data: np.ndarray, query: SDQuery):
    """Ground-truth answer computed by the sequential-scan oracle."""
    scan = SequentialScan(data, query.repulsive, query.attractive)
    return scan.query(query)


def assert_same_scores(result, expected, tol: float = 1e-9) -> None:
    """Assert two results contain the same multiset of scores (ties may permute)."""
    mine = sorted(result.scores, reverse=True)
    theirs = sorted(expected.scores, reverse=True)
    assert len(mine) == len(theirs), f"sizes differ: {len(mine)} vs {len(theirs)}"
    for a, b in zip(mine, theirs):
        assert abs(a - b) <= tol, f"score mismatch: {mine} vs {theirs}"
