"""Regression tests for bound/refinement edge cases (PR 10, satellite 2).

Every test here targets a path where the seeded k-th lower bound can
legitimately loosen to ``-inf`` — an empty live set, a verify pool smaller
than ``k``, an all-tombstone delta, a layered world with fewer live rows
than requested — or where a failure mid-mutation could leave counters
drifted.  A loosened threshold must degrade to a *correct* full scan, never
to a wrong answer, and a failed mutation must leave every stat untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.batch import _VERIFY_POOL
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


def build_index(rows: int = 40, seed: int = 7, **kwargs) -> SDIndex:
    rng = np.random.default_rng(seed)
    data = rng.random((rows, NUM_DIMS))
    kwargs.setdefault("flush_rows", 8)
    kwargs.setdefault("fanout", 2)
    kwargs.setdefault("background_compaction", False)
    return SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE, **kwargs)


def oracle_of(index: SDIndex) -> SequentialScan:
    with index.snapshot() as snapshot:
        rows, matrix = snapshot.frozen()
    return SequentialScan(
        matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in rows]
    )


def make_query(seed: int, k: int) -> SDQuery:
    rng = np.random.default_rng(seed)
    return SDQuery.simple(
        point=rng.random(NUM_DIMS), repulsive=REPULSIVE, attractive=ATTRACTIVE, k=k
    )


def assert_matches_oracle(index: SDIndex, k: int, seeds=(1, 2, 3)) -> None:
    oracle = oracle_of(index)
    for seed in seeds:
        query = make_query(seed, k)
        got = index.query(query)
        want = oracle.query(query)
        assert got.row_ids == want.row_ids
        assert got.scores == want.scores


class TestEmptyLiveSet:
    """``n_live == 0``: seeding finds nothing, the threshold is -inf, and the
    engine must return an empty result instead of tripping on empty pools."""

    @pytest.mark.parametrize("compaction", ["legacy", "size_tiered"])
    def test_query_after_deleting_everything(self, compaction):
        index = build_index(rows=12, compaction=compaction)
        index.bulk_delete(list(range(12)))
        result = index.query(make_query(0, k=5))
        assert list(result.row_ids) == []
        assert list(result.scores) == []

    def test_batch_query_after_deleting_everything(self):
        index = build_index(rows=10)
        index.bulk_delete(list(range(10)))
        results = index.batch_query([make_query(s, k=3) for s in range(4)])
        for result in results:
            assert list(result.row_ids) == []


class TestLargeK:
    """``k_eff > _VERIFY_POOL``: the refine head must widen with k instead of
    silently truncating the verified candidate set at the pool size."""

    def test_k_beyond_verify_pool_matches_oracle(self):
        rows = 4 * _VERIFY_POOL
        index = build_index(rows=rows, compaction="legacy")
        assert_matches_oracle(index, k=_VERIFY_POOL + 40)

    def test_k_beyond_verify_pool_lsm(self):
        rows = 4 * _VERIFY_POOL
        index = build_index(rows=rows, flush_rows=64)
        # Build layers so the pooled-sample threshold path runs.
        rng = np.random.default_rng(11)
        index.bulk_insert(rng.random((80, NUM_DIMS)), row_ids=range(rows, rows + 80))
        assert_matches_oracle(index, k=_VERIFY_POOL + 10)


class TestAllTombstoneDelta:
    """A delta whose every row is tombstoned holds zero live rows but still
    participates in bound pooling; it must contribute nothing, not -inf."""

    def test_query_with_dead_delta(self):
        index = build_index(rows=30, flush_rows=1000)  # inserts stay in delta
        session = index._aggregator.serving_session()  # build before mutating
        rng = np.random.default_rng(5)
        extra = list(range(30, 42))
        index.bulk_insert(rng.random((len(extra), NUM_DIMS)), row_ids=extra)
        index.bulk_delete(extra)  # delta is now all tombstones
        structure = session.structure()
        assert structure["delta_rows"] > 0
        assert structure["delta_live"] == 0
        assert_matches_oracle(index, k=7)


class TestPoolSmallerThanK:
    """Layered worlds with fewer live rows than ``k``: every source must be
    visited (no bound-ordered skip can fire while the pool is short)."""

    def test_k_exceeds_total_live_rows(self):
        index = build_index(rows=20, flush_rows=4)
        rng = np.random.default_rng(9)
        index.bulk_insert(rng.random((3, NUM_DIMS)), row_ids=[100, 101, 102])
        index.bulk_delete(list(range(0, 10)))
        oracle = oracle_of(index)
        query = make_query(4, k=50)  # > 13 live rows
        got = index.query(query)
        want = oracle.query(query)
        assert got.row_ids == want.row_ids
        assert got.scores == want.scores
        assert len(got.row_ids) == 13


class TestSeedPoolValidation:
    """A non-positive seed pool would disable pruning for every query while
    still returning correct-looking answers — reject it at construction."""

    @pytest.mark.parametrize("bad", [0, -1, -1024])
    def test_non_positive_seed_pool_rejected(self, bad):
        index = build_index(rows=8)
        with pytest.raises(ValueError, match="seed_pool"):
            index._aggregator.session(seed_pool=bad, cached=False)

    def test_seed_pool_of_one_is_legal(self):
        index = build_index(rows=8, compaction="legacy")
        session = index._aggregator.session(seed_pool=1, cached=False)
        oracle = oracle_of(index)
        query = make_query(2, k=3)
        got = session.run_one(query)
        want = oracle.query(query)
        assert got.row_ids == want.row_ids
        assert got.scores == want.scores


class TestFailedDeleteLeavesCountersUntouched:
    """``apply_bulk_delete`` raising KeyError must not publish a world *or*
    move ``delta_absorbed_deletes``/``patched_deletes`` (counter drift bug)."""

    def test_keyerror_rolls_back_all_accounting(self):
        index = build_index(rows=16, flush_rows=1000)
        session = index._aggregator.serving_session()  # build before mutating
        rng = np.random.default_rng(3)
        index.bulk_insert(rng.random((4, NUM_DIMS)), row_ids=[200, 201, 202, 203])
        assert session.structure()["delta_live"] == 4  # 200 lives in the delta
        before_stats = session.maintenance_stats()
        before_live = session.structure()["delta_live"]
        with pytest.raises(KeyError):
            # 200 is delta-live, 999999 exists nowhere: the partial delete
            # must not leak into counters or the published world.
            session.apply_bulk_delete(np.asarray([200, 999999], dtype=np.int64))
        after_stats = session.maintenance_stats()
        assert after_stats["delta_absorbed_deletes"] == before_stats["delta_absorbed_deletes"]
        assert session.patched_deletes == before_stats.get("patched_deletes", session.patched_deletes)
        assert session.structure()["delta_live"] == before_live
        # Row 200 is still live and queryable.
        assert_matches_oracle(index, k=5, seeds=(1,))
