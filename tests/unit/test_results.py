"""Unit tests for result records (repro.core.results)."""

from __future__ import annotations

import pytest

from repro.core.results import IndexStats, Match, TopKResult


class TestMatch:
    def test_ordering_is_best_first(self):
        matches = [Match(row_id=1, score=0.5), Match(row_id=2, score=2.0), Match(row_id=3, score=1.0)]
        assert [m.row_id for m in sorted(matches)] == [2, 3, 1]

    def test_ties_break_on_row_id(self):
        matches = [Match(row_id=9, score=1.0), Match(row_id=3, score=1.0)]
        assert [m.row_id for m in sorted(matches)] == [3, 9]


class TestTopKResult:
    def test_matches_are_sorted_on_construction(self):
        result = TopKResult(matches=[Match(row_id=1, score=0.1), Match(row_id=2, score=0.9)])
        assert result.row_ids == [2, 1]
        assert result.scores == [0.9, 0.1]

    def test_same_scores_ignores_row_identity(self):
        a = TopKResult(matches=[Match(row_id=1, score=1.0), Match(row_id=2, score=0.5)])
        b = TopKResult(matches=[Match(row_id=7, score=0.5), Match(row_id=9, score=1.0)])
        assert a.same_scores(b)

    def test_same_scores_detects_differences(self):
        a = TopKResult(matches=[Match(row_id=1, score=1.0)])
        b = TopKResult(matches=[Match(row_id=1, score=0.9)])
        assert not a.same_scores(b)
        c = TopKResult(matches=[Match(row_id=1, score=1.0), Match(row_id=2, score=0.5)])
        assert not a.same_scores(c)

    def test_from_pairs_keeps_only_best_k(self):
        result = TopKResult.from_pairs([(i, float(i)) for i in range(10)], k=3)
        assert result.scores == [9.0, 8.0, 7.0]

    def test_sequence_protocol(self):
        result = TopKResult(matches=[Match(row_id=1, score=1.0), Match(row_id=2, score=2.0)])
        assert len(result) == 2
        assert result[0].row_id == 2
        assert [m.row_id for m in result] == [2, 1]

    def test_score_vector(self):
        result = TopKResult(matches=[Match(row_id=1, score=1.0)])
        assert result.score_vector().tolist() == [1.0]


class TestIndexStats:
    def test_memory_mb(self):
        stats = IndexStats(name="x", num_points=10, memory_bytes=2 * 1024 * 1024)
        assert stats.memory_mb == pytest.approx(2.0)

    def test_as_dict_roundtrip(self):
        stats = IndexStats(name="x", num_points=10, num_nodes=3, memory_bytes=100)
        data = stats.as_dict()
        assert data["name"] == "x"
        assert data["num_points"] == 10
        assert data["num_nodes"] == 3
        assert data["memory_mb"] == pytest.approx(100 / (1024 * 1024))
