"""Unit tests for the apriori-k region index (repro.core.top1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Angle
from repro.core.query import SDQuery
from repro.core.top1 import Top1Index
from tests.conftest import assert_same_scores, oracle_topk


def make_query(qx, qy, k=1, alpha=1.0, beta=1.0):
    return SDQuery.simple([qx, qy], repulsive=[1], attractive=[0], k=k, alpha=alpha, beta=beta)


class TestConstruction:
    def test_empty_index(self):
        index = Top1Index([], [], k=1)
        assert len(index) == 0
        result = index.query(0.5, 0.5)
        assert len(result) == 0

    def test_single_point(self):
        index = Top1Index([0.5], [0.5], k=1)
        result = index.query(0.0, 0.0)
        assert result.row_ids == [0]
        assert result.scores[0] == pytest.approx(0.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            Top1Index([0.0], [0.0], k=0)

    def test_rejects_duplicate_row_ids(self):
        with pytest.raises(ValueError):
            Top1Index([0.0, 1.0], [0.0, 1.0], row_ids=[5, 5])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Top1Index([0.0, 1.0], [0.0])

    def test_from_weights_scales_scores(self, small_2d_dataset):
        x, y = small_2d_dataset[:, 0], small_2d_dataset[:, 1]
        index = Top1Index.from_weights(x, y, alpha=2.0, beta=0.5, k=1)
        result = index.query(0.5, 0.5)
        expected = oracle_topk(small_2d_dataset, make_query(0.5, 0.5, alpha=2.0, beta=0.5))
        assert_same_scores(result, expected)


class TestQueryCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_matches_oracle_unit_weights(self, small_2d_dataset, rng, k):
        x, y = small_2d_dataset[:, 0], small_2d_dataset[:, 1]
        index = Top1Index(x, y, k=k)
        for _ in range(25):
            qx, qy = rng.random(2)
            result = index.query(qx, qy, k=k)
            expected = oracle_topk(small_2d_dataset, make_query(qx, qy, k=k))
            assert_same_scores(result, expected)

    @pytest.mark.parametrize("alpha,beta", [(1.0, 3.0), (2.5, 0.3), (0.1, 0.1)])
    def test_matches_oracle_weighted(self, small_2d_dataset, rng, alpha, beta):
        x, y = small_2d_dataset[:, 0], small_2d_dataset[:, 1]
        index = Top1Index.from_weights(x, y, alpha=alpha, beta=beta, k=3)
        for _ in range(15):
            qx, qy = rng.random(2)
            result = index.query(qx, qy, k=3)
            expected = oracle_topk(small_2d_dataset, make_query(qx, qy, k=3, alpha=alpha, beta=beta))
            assert_same_scores(result, expected)

    def test_query_outside_data_range(self, small_2d_dataset):
        x, y = small_2d_dataset[:, 0], small_2d_dataset[:, 1]
        index = Top1Index(x, y, k=1)
        for qx, qy in [(-10.0, 0.5), (10.0, 0.5), (0.5, -10.0), (0.5, 10.0)]:
            result = index.query(qx, qy)
            expected = oracle_topk(small_2d_dataset, make_query(qx, qy))
            assert_same_scores(result, expected)

    def test_k_larger_than_built_k_rejected(self, small_2d_dataset):
        index = Top1Index(small_2d_dataset[:, 0], small_2d_dataset[:, 1], k=2)
        with pytest.raises(ValueError):
            index.query(0.5, 0.5, k=3)

    def test_k_smaller_than_built_k_allowed(self, small_2d_dataset):
        index = Top1Index(small_2d_dataset[:, 0], small_2d_dataset[:, 1], k=4)
        result = index.query(0.5, 0.5, k=2)
        expected = oracle_topk(small_2d_dataset, make_query(0.5, 0.5, k=2))
        assert_same_scores(result, expected)

    def test_duplicate_points(self):
        x = [0.2, 0.2, 0.8, 0.8]
        y = [0.3, 0.3, 0.9, 0.9]
        index = Top1Index(x, y, k=2)
        result = index.query(0.2, 0.3, k=2)
        data = np.column_stack([x, y])
        expected = oracle_topk(data, make_query(0.2, 0.3, k=2))
        assert_same_scores(result, expected)


class TestUpdates:
    def test_insert_then_query_matches_rebuilt_oracle(self, rng):
        base = rng.random((200, 2))
        index = Top1Index(base[:, 0], base[:, 1], k=1)
        extra = rng.random((50, 2))
        for i, (px, py) in enumerate(extra):
            index.insert(px, py, row_id=1000 + i)
        full = np.vstack([base, extra])
        for _ in range(10):
            qx, qy = rng.random(2)
            result = index.query(qx, qy)
            expected = oracle_topk(full, make_query(qx, qy))
            assert_same_scores(result, expected)

    def test_insert_rejects_duplicate_row(self, small_2d_dataset):
        index = Top1Index(small_2d_dataset[:, 0], small_2d_dataset[:, 1], k=1)
        with pytest.raises(ValueError):
            index.insert(0.5, 0.5, row_id=0)

    def test_insert_auto_assigns_row_id(self, small_2d_dataset):
        index = Top1Index(small_2d_dataset[:, 0], small_2d_dataset[:, 1], k=1)
        new_row = index.insert(0.5, 0.5)
        assert new_row == len(small_2d_dataset)

    def test_delete_owner_forces_correct_answers(self, rng):
        data = rng.random((150, 2))
        index = Top1Index(data[:, 0], data[:, 1], k=1)
        # Delete the current best answer for some query and re-check correctness.
        qx, qy = 0.5, 0.5
        best = index.query(qx, qy).row_ids[0]
        index.delete(best)
        remaining_rows = [i for i in range(len(data)) if i != best]
        remaining = data[remaining_rows]
        expected = oracle_topk(remaining, make_query(qx, qy))
        assert_same_scores(index.query(qx, qy), expected)

    def test_delete_unknown_row_raises(self, small_2d_dataset):
        index = Top1Index(small_2d_dataset[:, 0], small_2d_dataset[:, 1], k=1)
        with pytest.raises(KeyError):
            index.delete(10_000)

    def test_mixed_updates_k_greater_than_one(self, rng):
        data = rng.random((120, 2))
        index = Top1Index(data[:, 0], data[:, 1], k=3)
        live = {i: data[i] for i in range(len(data))}
        next_row = len(data)
        for step in range(120):
            if rng.random() < 0.6 or len(live) < 10:
                point = rng.random(2)
                index.insert(point[0], point[1], row_id=next_row)
                live[next_row] = point
                next_row += 1
            else:
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]
        rows = list(live)
        matrix = np.array([live[r] for r in rows])
        for _ in range(5):
            qx, qy = rng.random(2)
            expected = oracle_topk(matrix, make_query(qx, qy, k=3))
            assert_same_scores(index.query(qx, qy, k=3), expected)


class TestStats:
    def test_stats_fields(self, small_2d_dataset):
        index = Top1Index(small_2d_dataset[:, 0], small_2d_dataset[:, 1], k=1)
        stats = index.stats()
        assert stats.name == "sd-top1"
        assert stats.num_points == len(small_2d_dataset)
        assert stats.num_regions > 0
        assert stats.memory_bytes > 0
        assert stats.build_seconds is not None

    def test_region_count_is_linear(self, rng):
        """Claim 5 / storage bound: at most 2n regions for k=1."""
        data = rng.random((500, 2))
        index = Top1Index(data[:, 0], data[:, 1], k=1)
        lower, upper = index.envelope_layers()
        assert len(lower[0]) <= len(data)
        assert len(upper[0]) <= len(data)

    def test_klists_storage_bound(self, rng):
        """The apriori-k structure stores O(k n) region entries."""
        data = rng.random((300, 2))
        k = 4
        index = Top1Index(data[:, 0], data[:, 1], k=k)
        structures = index.region_structures()
        assert len(structures) == 4
        for structure in structures.values():
            assert structure.num_regions() <= len(data) + 1
