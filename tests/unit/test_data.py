"""Unit tests for datasets and generators (repro.data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.chembl import (
    CHEMBL_COLUMNS,
    PAPER_OVERALL_AVERAGES,
    generate_chembl_like,
    paper_query_molecule,
)
from repro.data.dataset import Dataset
from repro.data.generators import (
    DISTRIBUTIONS,
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_dataset,
    generate_uniform,
)


class TestDataset:
    def test_basic_accessors(self):
        ds = Dataset(matrix=np.arange(6.0).reshape(3, 2), columns=("a", "b"), name="t")
        assert len(ds) == 3
        assert ds.num_dims == 2
        assert ds.column_index("b") == 1
        assert ds.column("a").tolist() == [0.0, 2.0, 4.0]
        assert ds.point(1).tolist() == [2.0, 3.0]

    def test_unknown_column_raises(self):
        ds = Dataset(matrix=np.zeros((2, 2)), columns=("a", "b"))
        with pytest.raises(KeyError):
            ds.column_index("missing")

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Dataset(matrix=np.zeros((2, 2)), columns=("a", "a"))

    def test_rejects_column_count_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(matrix=np.zeros((2, 3)), columns=("a", "b"))

    def test_sample_and_head(self):
        ds = Dataset(matrix=np.random.default_rng(0).random((50, 2)), columns=("a", "b"))
        sample = ds.sample(10, seed=1)
        assert len(sample) == 10
        assert sample.num_dims == 2
        head = ds.head(5)
        assert np.allclose(head.matrix, ds.matrix[:5])

    def test_sample_is_deterministic(self):
        ds = Dataset(matrix=np.random.default_rng(0).random((50, 2)), columns=("a", "b"))
        assert np.allclose(ds.sample(10, seed=3).matrix, ds.sample(10, seed=3).matrix)

    def test_select_reorders_columns(self):
        ds = Dataset(matrix=np.arange(6.0).reshape(2, 3), columns=("a", "b", "c"))
        selected = ds.select(["c", "a"])
        assert selected.columns == ("c", "a")
        assert selected.matrix.tolist() == [[2.0, 0.0], [5.0, 3.0]]

    def test_describe(self):
        ds = Dataset(matrix=np.array([[1.0, 10.0], [3.0, 30.0]]), columns=("a", "b"))
        summary = ds.describe()
        assert summary["a"]["mean"] == pytest.approx(2.0)
        assert summary["b"]["max"] == pytest.approx(30.0)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_shapes_and_ranges(self, name):
        ds = generate_dataset(name, 500, 4, seed=3)
        assert ds.matrix.shape == (500, 4)
        assert ds.matrix.min() >= 0.0
        assert ds.matrix.max() <= 1.0
        assert ds.metadata["distribution"] == name

    def test_generators_are_deterministic(self):
        a = generate_uniform(100, 3, seed=5)
        b = generate_uniform(100, 3, seed=5)
        assert np.allclose(a.matrix, b.matrix)
        c = generate_uniform(100, 3, seed=6)
        assert not np.allclose(a.matrix, c.matrix)

    def test_correlated_has_positive_correlation(self):
        ds = generate_correlated(5000, 2, seed=1)
        correlation = np.corrcoef(ds.matrix[:, 0], ds.matrix[:, 1])[0, 1]
        assert correlation > 0.7

    def test_anticorrelated_has_negative_correlation(self):
        ds = generate_anticorrelated(5000, 2, seed=1)
        correlation = np.corrcoef(ds.matrix[:, 0], ds.matrix[:, 1])[0, 1]
        assert correlation < -0.3

    def test_clustered_uses_requested_cluster_count(self):
        ds = generate_clustered(1000, 2, seed=2, num_clusters=3)
        assert ds.metadata["num_clusters"] == 3

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            generate_dataset("zipf", 10, 2)


class TestChemblGenerator:
    def test_columns_and_size(self):
        ds = generate_chembl_like(num_molecules=5000, seed=1)
        assert ds.columns == CHEMBL_COLUMNS
        assert len(ds) == 5000

    def test_overall_averages_close_to_paper(self):
        ds = generate_chembl_like(num_molecules=60_000, seed=1)
        assert ds.column("drug_likeness").mean() == pytest.approx(
            PAPER_OVERALL_AVERAGES["drug_likeness"], abs=0.8
        )
        assert ds.column("molecular_weight").mean() == pytest.approx(
            PAPER_OVERALL_AVERAGES["molecular_weight"], rel=0.08
        )
        assert ds.column("polar_surface_area").mean() == pytest.approx(
            PAPER_OVERALL_AVERAGES["polar_surface_area"], rel=0.12
        )

    def test_exception_population_exists(self):
        ds = generate_chembl_like(num_molecules=30_000, seed=2)
        mw = ds.column("molecular_weight")
        psa = ds.column("polar_surface_area")
        heavy = mw > 750
        assert heavy.sum() > 50
        # Heavy molecules have distinctly lower PSA than the rest on average.
        assert psa[heavy].mean() < 0.6 * psa[~heavy].mean()

    def test_rejects_tiny_library(self):
        with pytest.raises(ValueError):
            generate_chembl_like(num_molecules=10)

    def test_query_molecule_matches_paper(self):
        ds = generate_chembl_like(num_molecules=5000, seed=3)
        query = paper_query_molecule(ds)
        assert query[ds.column_index("drug_likeness")] == pytest.approx(11.0)
        assert query[ds.column_index("molecular_weight")] == pytest.approx(250.0)

    def test_deterministic(self):
        a = generate_chembl_like(num_molecules=2000, seed=4)
        b = generate_chembl_like(num_molecules=2000, seed=4)
        assert np.allclose(a.matrix, b.matrix)


class TestGeneratorSeeding:
    """Regression: generation is a pure function of (seed | rng), never of
    global numpy state, so golden regeneration stays order-independent."""

    def test_generators_ignore_global_numpy_state(self):
        baselines = {
            name: generate_dataset(name, 300, 3, seed=11).matrix
            for name in DISTRIBUTIONS
        }
        chembl_baseline = generate_chembl_like(2000, seed=11).matrix
        # Perturb the legacy global state and burn draws between calls; every
        # generator must still reproduce its baseline exactly.
        np.random.seed(999)
        np.random.random(1234)
        for name, expected in baselines.items():
            np.random.random(7)
            regenerated = generate_dataset(name, 300, 3, seed=11).matrix
            assert np.array_equal(regenerated, expected), name
        assert np.array_equal(generate_chembl_like(2000, seed=11).matrix, chembl_baseline)

    def test_explicit_rng_matches_equivalent_seed(self):
        for name in DISTRIBUTIONS:
            from_seed = generate_dataset(name, 200, 4, seed=23).matrix
            from_rng = generate_dataset(
                name, 200, 4, seed=999, rng=np.random.default_rng(23)
            ).matrix
            assert np.array_equal(from_seed, from_rng), name
        assert np.array_equal(
            generate_chembl_like(1500, seed=23).matrix,
            generate_chembl_like(1500, rng=np.random.default_rng(23)).matrix,
        )

    def test_explicit_rng_stream_advances(self):
        rng = np.random.default_rng(5)
        first = generate_uniform(100, 2, rng=rng).matrix
        second = generate_uniform(100, 2, rng=rng).matrix
        assert not np.array_equal(first, second)
        # Interleaving on one stream is itself reproducible.
        rng = np.random.default_rng(5)
        assert np.array_equal(first, generate_uniform(100, 2, rng=rng).matrix)
        assert np.array_equal(second, generate_uniform(100, 2, rng=rng).matrix)

    def test_dataset_sample_accepts_rng(self):
        ds = generate_uniform(500, 3, seed=1)
        from_seed = ds.sample(50, seed=9).matrix
        from_rng = ds.sample(50, rng=np.random.default_rng(9)).matrix
        assert np.array_equal(from_seed, from_rng)
