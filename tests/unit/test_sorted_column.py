"""Unit tests for SortedColumn and the bidirectional explorers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.substrates.bidirectional import FarthestFirstExplorer, NearestFirstExplorer
from repro.substrates.sorted_column import SortedColumn


class TestSortedColumn:
    def test_values_are_sorted_and_rows_tracked(self):
        column = SortedColumn([3.0, 1.0, 2.0], row_ids=[10, 11, 12])
        assert column.values.tolist() == [1.0, 2.0, 3.0]
        assert column.row_ids.tolist() == [11, 12, 10]
        assert column.entry(0) == (11, 1.0)

    def test_iteration_yields_row_value_pairs(self):
        column = SortedColumn([2.0, 1.0])
        assert list(column) == [(1, 1.0), (0, 2.0)]

    def test_rank_of(self):
        column = SortedColumn([1.0, 2.0, 2.0, 3.0])
        assert column.rank_of(0.5) == 0
        assert column.rank_of(2.0) == 1
        assert column.rank_of(10.0) == 4

    def test_min_max_and_distances(self):
        column = SortedColumn([1.0, 5.0, 9.0])
        assert column.min() == 1.0
        assert column.max() == 9.0
        assert column.farthest_distance(2.0) == pytest.approx(7.0)
        assert column.nearest_distance(2.0) == pytest.approx(1.0)
        assert column.nearest_distance(5.0) == pytest.approx(0.0)

    def test_empty_column_behaviour(self):
        column = SortedColumn([])
        assert len(column) == 0
        assert column.farthest_distance(1.0) == 0.0
        assert column.nearest_distance(1.0) == 0.0
        with pytest.raises(ValueError):
            column.min()

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            SortedColumn(np.zeros((3, 2)))

    def test_rejects_misaligned_row_ids(self):
        with pytest.raises(ValueError):
            SortedColumn([1.0, 2.0], row_ids=[1])

    def test_views_are_read_only(self):
        column = SortedColumn([1.0, 2.0])
        with pytest.raises(ValueError):
            column.values[0] = 5.0

    def test_memory_accounting(self):
        column = SortedColumn([1.0, 2.0, 3.0])
        assert column.memory_bytes() == 48


class TestNearestFirstExplorer:
    def test_orders_by_distance_to_query(self):
        column = SortedColumn([0.0, 1.0, 2.0, 5.0, 9.0])
        explorer = NearestFirstExplorer(column, query_value=2.2)
        distances = [d for _, d in explorer]
        assert distances == sorted(distances)
        assert len(distances) == 5

    def test_head_distance_matches_next(self):
        column = SortedColumn([0.0, 4.0, 10.0])
        explorer = NearestFirstExplorer(column, query_value=3.0)
        while True:
            head = explorer.head_distance()
            if head is None:
                break
            _, distance = next(explorer)
            assert distance == pytest.approx(head)

    def test_exhaustion(self):
        explorer = NearestFirstExplorer(SortedColumn([1.0]), query_value=0.0)
        next(explorer)
        with pytest.raises(StopIteration):
            next(explorer)
        assert explorer.head_distance() is None

    def test_query_outside_range(self):
        column = SortedColumn([1.0, 2.0, 3.0])
        rows = [row for row, _ in NearestFirstExplorer(column, query_value=100.0)]
        assert rows == [2, 1, 0]


class TestFarthestFirstExplorer:
    def test_orders_by_decreasing_distance(self):
        column = SortedColumn([0.0, 1.0, 2.0, 5.0, 9.0])
        explorer = FarthestFirstExplorer(column, query_value=2.2)
        distances = [d for _, d in explorer]
        assert distances == sorted(distances, reverse=True)
        assert len(distances) == 5

    def test_head_distance_matches_next(self):
        column = SortedColumn([0.0, 4.0, 10.0, -3.0])
        explorer = FarthestFirstExplorer(column, query_value=3.0)
        while True:
            head = explorer.head_distance()
            if head is None:
                break
            _, distance = next(explorer)
            assert distance == pytest.approx(head)

    def test_single_element(self):
        explorer = FarthestFirstExplorer(SortedColumn([5.0]), query_value=1.0)
        assert next(explorer) == (0, 4.0)
        with pytest.raises(StopIteration):
            next(explorer)

    def test_empty_column(self):
        explorer = FarthestFirstExplorer(SortedColumn([]), query_value=1.0)
        assert explorer.head_distance() is None
        with pytest.raises(StopIteration):
            next(explorer)
