"""Unit tests for the projection tree (repro.core.projection_tree)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.angles import AngleGrid
from repro.core.geometry import Angle
from repro.core.projection_tree import ProjectionTree, StreamSpec

DEFAULT_ANGLES = tuple(AngleGrid.default())


def make_tree(data, **kwargs):
    options = {"angles": DEFAULT_ANGLES, "branching": 4, "leaf_capacity": 8}
    options.update(kwargs)
    return ProjectionTree(data[:, 0], data[:, 1], **options)


def brute_force_stream(data, spec, qx, angle):
    """Ground truth ordering of one projection stream."""
    right_side, use_a, maximize = StreamSpec.config(spec)
    entries = []
    for row, (x, y) in enumerate(data):
        eligible = x >= qx if right_side else x <= qx
        if not eligible:
            continue
        key = angle.intercept_a(x, y) if use_a else angle.intercept_b(x, y)
        entries.append((key, row))
    entries.sort(reverse=maximize)
    return [key for key, _ in entries]


class TestConstruction:
    def test_empty_tree(self):
        tree = ProjectionTree([], [], angles=DEFAULT_ANGLES)
        assert len(tree) == 0
        stream = tree.open_stream(StreamSpec.LLP, 0.5, Angle.from_weights(1, 1))
        assert stream.exhausted()

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            ProjectionTree([0.0], [0.0], angles=DEFAULT_ANGLES, branching=1)

    def test_rejects_bad_leaf_capacity(self):
        with pytest.raises(ValueError):
            ProjectionTree([0.0], [0.0], angles=DEFAULT_ANGLES, leaf_capacity=0)

    def test_rejects_empty_angle_set(self):
        with pytest.raises(ValueError):
            ProjectionTree([0.0], [0.0], angles=())

    def test_rejects_duplicate_row_ids(self):
        with pytest.raises(ValueError):
            ProjectionTree([0.0, 1.0], [0.0, 1.0], angles=DEFAULT_ANGLES, row_ids=[3, 3])

    def test_height_is_logarithmic(self, rng):
        data = rng.random((2000, 2))
        tree = make_tree(data, branching=4, leaf_capacity=8)
        stats = tree.stats()
        expected_height = math.ceil(math.log(2000 / 8, 4)) + 1
        assert stats.height <= expected_height + 1

    def test_point_lookup(self, rng):
        data = rng.random((50, 2))
        tree = make_tree(data)
        for row in range(50):
            px, py = tree.point(row)
            assert px == pytest.approx(data[row, 0])
            assert py == pytest.approx(data[row, 1])
        assert 3 in tree
        assert 5000 not in tree


class TestStreams:
    @pytest.mark.parametrize("spec", StreamSpec.ALL)
    @pytest.mark.parametrize("degrees", [0.0, 22.5, 37.0, 45.0, 80.0, 90.0])
    def test_stream_order_matches_brute_force(self, rng, spec, degrees):
        data = rng.random((300, 2))
        tree = make_tree(data)
        angle = Angle.from_degrees(degrees)
        qx = float(rng.random())
        stream = tree.open_stream(spec, qx, angle)
        keys = [key for _, _, _, key in stream]
        expected = brute_force_stream(data, spec, qx, angle)
        assert len(keys) == len(expected)
        assert keys == pytest.approx(expected)

    def test_head_key_bounds_next_yield(self, rng):
        data = rng.random((200, 2))
        tree = make_tree(data)
        angle = Angle.from_weights(1.0, 0.6)
        stream = tree.open_stream(StreamSpec.LLP, 0.4, angle)
        while not stream.exhausted():
            head = stream.head_key()
            _, _, _, key = next(stream)
            assert key <= head + 1e-9

    def test_streams_cover_each_point_exactly_once(self, rng):
        data = rng.random((120, 2))
        tree = make_tree(data)
        angle = Angle.from_weights(1, 1)
        qx = 0.5
        left = [row for row, _, _, _ in tree.open_stream(StreamSpec.RLP, qx, angle)]
        right = [row for row, _, _, _ in tree.open_stream(StreamSpec.LLP, qx, angle)]
        assert len(set(left)) == len(left)
        assert len(set(right)) == len(right)
        assert set(left) | set(right) == set(range(len(data)))

    def test_interpolated_bounds_are_admissible(self, rng):
        """Bounds at a non-indexed angle must never cut off the true best key."""
        data = rng.random((150, 2))
        tree = make_tree(data, angles=tuple(AngleGrid.from_degrees([0, 45, 90])))
        angle = Angle.from_degrees(30.0)
        qx = 0.5
        stream = tree.open_stream(StreamSpec.LLP, qx, angle)
        keys = [key for _, _, _, key in stream]
        expected = brute_force_stream(data, StreamSpec.LLP, qx, angle)
        assert keys == pytest.approx(expected)


class TestUpdates:
    def test_insert_appears_in_streams(self, rng):
        data = rng.random((100, 2))
        tree = make_tree(data)
        tree.insert(0.5, 2.0, row_id=500)  # far above everything: best LLP/RLP key
        angle = Angle.from_weights(1, 1)
        stream = tree.open_stream(StreamSpec.LLP, 0.2, angle)
        first_row, _, _, _ = next(stream)
        assert first_row == 500

    def test_insert_rejects_duplicate_row(self, rng):
        data = rng.random((20, 2))
        tree = make_tree(data)
        with pytest.raises(ValueError):
            tree.insert(0.1, 0.1, row_id=5)

    def test_deleted_rows_disappear_from_streams(self, rng):
        data = rng.random((80, 2))
        tree = make_tree(data)
        tree.delete(7)
        angle = Angle.from_weights(1, 1)
        rows = [row for row, _, _, _ in tree.open_stream(StreamSpec.LLP, -1.0, angle)]
        assert 7 not in rows
        assert len(rows) == 79

    def test_delete_unknown_row_raises(self, rng):
        tree = make_tree(rng.random((10, 2)))
        with pytest.raises(KeyError):
            tree.delete(999)

    def test_deleted_row_id_cannot_be_reused(self, rng):
        tree = make_tree(rng.random((10, 2)))
        tree.delete(3)
        with pytest.raises(ValueError):
            tree.insert(0.5, 0.5, row_id=3)

    def test_many_inserts_trigger_splits_but_stay_correct(self, rng):
        data = rng.random((64, 2))
        tree = make_tree(data, leaf_capacity=4, branching=2)
        for i in range(300):
            x, y = rng.random(2)
            tree.insert(x, y, row_id=1000 + i)
        assert len(tree) == 364
        angle = Angle.from_weights(1, 1)
        all_points = {row: (x, y) for row, x, y in tree.iter_points()}
        stream_rows = [row for row, _, _, _ in tree.open_stream(StreamSpec.LLP, -10.0, angle)]
        assert set(stream_rows) == set(all_points)

    def test_rebuild_resets_garbage(self, rng):
        data = rng.random((100, 2))
        tree = make_tree(data, rebuild_threshold=10.0)  # never auto-rebuild
        for row in range(40):
            tree.delete(row)
        assert len(tree) == 60
        tree.rebuild()
        assert len(tree) == 60
        angle = Angle.from_weights(1, 1)
        rows = [row for row, _, _, _ in tree.open_stream(StreamSpec.RLP, 10.0, angle)]
        assert len(rows) == 60

    def test_needs_rebuild_after_many_deletes(self, rng):
        data = rng.random((100, 2))
        tree = make_tree(data, rebuild_threshold=0.2)
        # delete() auto-rebuilds once the threshold is crossed, so garbage stays bounded
        for row in range(50):
            tree.delete(row)
        assert not tree.needs_rebuild()
        assert len(tree) == 50


class TestStats:
    def test_stats_shape(self, rng):
        data = rng.random((500, 2))
        tree = make_tree(data, branching=8, leaf_capacity=16)
        stats = tree.stats()
        assert stats.num_points == 500
        assert stats.num_nodes >= stats.num_regions >= 1
        assert stats.branching == 8
        assert stats.num_angles == len(DEFAULT_ANGLES)
        assert stats.memory_bytes > 0

    def test_memory_grows_with_angles(self, rng):
        data = rng.random((400, 2))
        small = ProjectionTree(data[:, 0], data[:, 1], angles=tuple(AngleGrid.from_degrees([0, 90])))
        large = ProjectionTree(data[:, 0], data[:, 1], angles=tuple(AngleGrid.uniform(9)))
        assert large.stats().memory_bytes > small.stats().memory_bytes
