"""Unit tests for the serving front end (admission, cache, coalescer, HTTP).

Async tests run through ``asyncio.run`` directly — no plugin dependency —
and the coalescer's manual-tick mode (``tick_seconds=None``) makes batch
boundaries deterministic wherever the assertion depends on them.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.baselines.sequential import SequentialScan
from repro.core.sdindex import SDIndex
from repro.serving.admission import AdmissionController, AdmissionError, TokenBucket
from repro.serving.cache import ResultCache
from repro.serving.coalescer import (
    RequestTimeout,
    ServerClosedError,
    TickCoalescer,
    query_key,
)
from repro.serving.server import SDQueryServer, ServingClient, ServingConfig

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def small_index():
    rng = np.random.default_rng(42)
    data = rng.uniform(0, 1, size=(200, 4))
    index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    return index, SequentialScan(data, REPULSIVE, ATTRACTIVE), data


def _query(index, seed: int, k: int = 3):
    from repro.core.query import SDQuery

    rng = np.random.default_rng(seed)
    return SDQuery.simple(
        point=rng.uniform(0, 1, size=4),
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        k=k,
        alpha=rng.uniform(0.1, 1.0, size=2),
        beta=rng.uniform(0.1, 1.0, size=2),
    )


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.1)  # one token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 2.0

    def test_seconds_until_is_exact_at_the_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.seconds_until() == pytest.approx(0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_rate_rejection_carries_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(rate=2.0, burst=1.0, clock=clock)
        controller.admit("a")
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("a")
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after == pytest.approx(0.5)

    def test_tenants_have_independent_buckets(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=1.0, clock=clock)
        controller.admit("a")
        controller.admit("b")  # b's bucket is untouched by a's spend
        with pytest.raises(AdmissionError):
            controller.admit("a")

    def test_in_flight_cap_and_release(self):
        controller = AdmissionController(max_in_flight=2)
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("a")
        assert excinfo.value.reason == "in_flight"
        controller.release("a")
        controller.admit("a")  # slot freed
        assert controller.in_flight("a") == 2

    def test_release_without_admit_is_a_bug(self):
        controller = AdmissionController(max_in_flight=1)
        with pytest.raises(RuntimeError):
            controller.release("ghost")

    def test_unlimited_by_default(self):
        controller = AdmissionController()
        for _ in range(1000):
            controller.admit("a")
        assert controller.stats()["admitted"] == 1000


class TestResultCache:
    def test_epoch_key_partitions_entries(self):
        cache = ResultCache(capacity=8)
        cache.put("q", 1, "epoch-one")
        assert cache.get("q", 1) == "epoch-one"
        assert cache.get("q", 2) is None  # same query, new epoch: miss
        cache.put("q", 2, "epoch-two")
        assert cache.get("q", 1) == "epoch-one"  # old epoch entry intact

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        assert cache.get("a", 1) == "A"  # refresh a
        cache.put("c", 1, "C")  # evicts b, the least recent
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == "A"
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_clear_resets_counters_by_default(self):
        cache = ResultCache(capacity=1)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")  # evicts a
        assert cache.get("a", 1) is None  # miss
        assert cache.get("b", 1) == "B"  # hit
        before = cache.stats()
        assert (before["hits"], before["misses"], before["evictions"]) == (1, 1, 1)
        cache.clear()
        after = cache.stats()
        assert after["entries"] == 0
        assert (after["hits"], after["misses"], after["evictions"]) == (0, 0, 0)
        assert after["rejected_degraded"] == 0

    def test_clear_can_keep_lifetime_counters(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1, "A")
        assert cache.get("a", 1) == "A"
        assert cache.get("zzz", 1) is None
        cache.clear(reset_counters=False)
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestTickCoalescer:
    def test_manual_flush_coalesces_into_one_batch(self, small_index):
        index, oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=None, max_batch=64)
            queries = [_query(index, seed) for seed in range(5)]
            futures = [
                asyncio.ensure_future(coalescer.submit(q)) for q in queries
            ]
            await asyncio.sleep(0)  # let submits enqueue
            assert coalescer.backlog == 5
            flushed = await coalescer.flush()
            served = await asyncio.gather(*futures)
            await coalescer.close()
            return flushed, queries, served

        flushed, queries, served = asyncio.run(scenario())
        assert flushed == 5
        assert all(s.batch_size == 5 for s in served)
        for q, s in zip(queries, served):
            expect = small_index[1].query(q)
            assert s.result.row_ids == expect.row_ids
            assert s.result.scores == expect.scores

    def test_max_batch_splits_the_queue(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=None, max_batch=3)
            futures = [
                asyncio.ensure_future(coalescer.submit(_query(index, seed)))
                for seed in range(7)
            ]
            await asyncio.sleep(0)
            await coalescer.flush()
            served = await asyncio.gather(*futures)
            await coalescer.close()
            return served, dict(coalescer.batch_sizes)

        served, sizes = asyncio.run(scenario())
        assert sizes == {3: 2, 1: 1}
        assert sorted(s.batch_size for s in served) == [1, 3, 3, 3, 3, 3, 3]

    def test_identical_queries_hit_the_cache_within_an_epoch(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            cache = ResultCache(capacity=16)
            coalescer = TickCoalescer(index, tick_seconds=None, cache=cache)
            query = _query(index, 7)
            first = asyncio.ensure_future(coalescer.submit(query))
            await asyncio.sleep(0)
            await coalescer.flush()
            second = asyncio.ensure_future(coalescer.submit(query))
            await asyncio.sleep(0)
            await coalescer.flush()
            a, b = await first, await second
            await coalescer.close()
            return a, b, cache.stats()

        a, b, stats = asyncio.run(scenario())
        assert not a.cached and b.cached
        assert a.result is b.result  # the identical materialized answer
        assert stats["hits"] == 1

    def test_epoch_publication_invalidates_the_cache(self, small_index):
        index, _oracle, data = small_index

        async def scenario():
            cache = ResultCache(capacity=16)
            coalescer = TickCoalescer(index, tick_seconds=None, cache=cache)
            query = _query(index, 9)
            first = asyncio.ensure_future(coalescer.submit(query))
            await asyncio.sleep(0)
            await coalescer.flush()
            a = await first
            # A mutation publishes a new epoch: the cache must not serve a.
            index.insert(np.full(4, 0.5), row_id=9_000)
            second = asyncio.ensure_future(coalescer.submit(query))
            await asyncio.sleep(0)
            await coalescer.flush()
            b = await second
            index.delete(9_000)  # restore the module-scoped index
            await coalescer.close()
            return a, b

        a, b = asyncio.run(scenario())
        assert not a.cached and not b.cached
        assert a.epoch != b.epoch

    def test_timeout_raises_and_skips_delivery(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=None)
            with pytest.raises(RequestTimeout):
                await coalescer.submit(_query(index, 1), timeout=0.01)
            # The timed-out slot is skipped; a later flush serves nothing.
            flushed = await coalescer.flush()
            await coalescer.close()
            return flushed, coalescer.timeouts, coalescer.served

        flushed, timeouts, served = asyncio.run(scenario())
        assert flushed == 1  # the dead entry drained without delivery
        assert timeouts == 1
        assert served == 0

    def test_close_fails_queued_requests(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=None)
            future = asyncio.ensure_future(coalescer.submit(_query(index, 2)))
            await asyncio.sleep(0)
            await coalescer.close()
            with pytest.raises(ServerClosedError):
                await future
            with pytest.raises(ServerClosedError):
                await coalescer.submit(_query(index, 3))

        asyncio.run(scenario())

    def test_baseline_mode_serves_batches_of_one(self, small_index):
        index, oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, coalesce=False)
            served = [
                await coalescer.submit(_query(index, seed)) for seed in range(4)
            ]
            await coalescer.close()
            return served

        served = asyncio.run(scenario())
        assert all(s.batch_size == 1 for s in served)
        for seed, s in enumerate(served):
            expect = oracle.query(_query(index, seed))
            assert s.result.row_ids == expect.row_ids

    def test_drainer_ticks_without_manual_flush(self, small_index):
        index, oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=0.001)
            queries = [_query(index, seed) for seed in range(6)]
            served = await asyncio.gather(
                *(coalescer.submit(q) for q in queries)
            )
            await coalescer.close()
            return queries, served

        queries, served = asyncio.run(scenario())
        for q, s in zip(queries, served):
            expect = oracle.query(q)
            assert s.result.row_ids == expect.row_ids
            assert s.result.scores == expect.scores

    def test_no_pins_left_behind(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            coalescer = TickCoalescer(index, tick_seconds=0.0)
            await asyncio.gather(
                *(coalescer.submit(_query(index, seed)) for seed in range(8))
            )
            await coalescer.close()

        asyncio.run(scenario())
        report = index.query_session().epochs.leak_report()
        assert report["pinned_readers"] == 0


class TestQueryKey:
    def test_key_distinguishes_every_field(self, small_index):
        index, _oracle, _data = small_index
        base = _query(index, 5, k=3)
        assert query_key(base) == query_key(_query(index, 5, k=3))
        assert query_key(base) != query_key(_query(index, 6, k=3))
        assert query_key(base) != query_key(_query(index, 5, k=4))


class TestHTTPServer:
    def test_query_roundtrip_is_bit_identical(self, small_index):
        index, oracle, _data = small_index

        async def scenario():
            async with SDQueryServer(index, ServingConfig(tick_seconds=0.0)) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    q = _query(index, 12, k=5)
                    status, payload = await client.query(
                        q.point, k=q.k, alpha=q.alpha, beta=q.beta
                    )
            return status, payload, oracle.query(q)

        status, payload, expect = asyncio.run(scenario())
        assert status == 200
        assert payload["row_ids"] == expect.row_ids
        assert payload["scores"] == expect.scores  # exact float round-trip
        assert payload["batch_size"] >= 1

    def test_healthz_stats_and_unknown_route(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            async with SDQueryServer(index) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    health = await client.request("GET", "/healthz")
                    stats = await client.request("GET", "/stats")
                    missing = await client.request("GET", "/nope")
            return health, stats, missing

        health, stats, missing = asyncio.run(scenario())
        assert health == (200, {"status": "ok"})
        assert stats[0] == 200 and stats[1]["engine"] == "SDIndex"
        assert missing[0] == 404

    def test_malformed_body_is_a_400(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            async with SDQueryServer(index) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    not_json = await client.request("POST", "/query", None)
                    no_point = await client.request("POST", "/query", {"k": 3})
                    bad_k = await client.query([0.5] * 4, k=0)
            return not_json, no_point, bad_k

        not_json, no_point, bad_k = asyncio.run(scenario())
        assert not_json[0] == 400
        assert no_point[0] == 400
        assert bad_k[0] == 400

    def test_garbage_bytes_get_a_400_not_a_hang(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            async with SDQueryServer(index) as server:
                host, port = await server.start()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not http\r\n\r\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=5)
                writer.close()
                await writer.wait_closed()
            return line

        line = asyncio.run(scenario())
        assert b"400" in line

    def test_rate_limit_maps_to_429_with_retry_after(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            config = ServingConfig(tick_seconds=0.0, rate=1.0, burst=1.0)
            async with SDQueryServer(index, config) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    q = _query(index, 3)
                    first = await client.query(q.point, k=q.k, tenant="t1")
                    second = await client.query(q.point, k=q.k, tenant="t1")
                    other = await client.query(q.point, k=q.k, tenant="t2")
            return first, second, other

        first, second, other = asyncio.run(scenario())
        assert first[0] == 200
        assert second[0] == 429 and second[1]["reason"] == "rate"
        assert second[1]["retry_after"] > 0
        assert other[0] == 200  # tenants are isolated

    def test_timeout_maps_to_504(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            # Manual-tick mode never serves on its own: the deadline must fire.
            config = ServingConfig(tick_seconds=None)
            async with SDQueryServer(index, config) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    q = _query(index, 4)
                    return await client.query(q.point, k=q.k, timeout=0.05)

        status, payload = asyncio.run(scenario())
        assert status == 504
        assert payload["timeout"] == pytest.approx(0.05)

    def test_embedded_submit_after_close_raises(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            server = SDQueryServer(index, ServingConfig(tick_seconds=0.0))
            await server.start()
            await server.close()
            q = _query(index, 6)
            with pytest.raises(ServerClosedError):
                await server.coalescer.submit(q)

        asyncio.run(scenario())

    def test_shutdown_leaves_no_pins_or_in_flight(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            config = ServingConfig(tick_seconds=0.001, max_in_flight=64)
            async with SDQueryServer(index, config) as server:
                queries = [_query(index, seed) for seed in range(20)]
                await asyncio.gather(
                    *(
                        server.submit(
                            q.point, k=q.k, alpha=q.alpha, beta=q.beta
                        )
                        for q in queries
                    )
                )
                return server

        server = asyncio.run(scenario())
        assert server.admission.total_in_flight == 0
        report = index.query_session().epochs.leak_report()
        assert report["pinned_readers"] == 0

    def test_sharded_engine_serves_with_version_tuple_epochs(self):
        rng = np.random.default_rng(17)
        data = rng.uniform(0, 1, size=(300, 4))
        index = SDIndex.build_sharded(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=3
        )
        oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)

        async def scenario():
            async with SDQueryServer(index, ServingConfig(tick_seconds=0.0)) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    q = _query(index, 21, k=4)
                    return await client.query(
                        q.point, k=q.k, alpha=q.alpha, beta=q.beta
                    ), oracle.query(q)

        (status, payload), expect = asyncio.run(scenario())
        index.close()
        assert status == 200
        assert payload["row_ids"] == expect.row_ids
        assert payload["scores"] == expect.scores
        assert isinstance(payload["epoch"], list)  # (topology, *shard versions)
        assert len(payload["epoch"]) == 4


class TestNoTimeoutSentinel:
    """``timeout=None`` means "use the configured default"; the NO_TIMEOUT
    sentinel is the only way to ask for an unbounded wait (the old API
    silently fell back to the default for both)."""

    def test_none_falls_back_to_config_default(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            # Manual-tick mode never serves on its own: only the default
            # deadline can end the wait.
            config = ServingConfig(tick_seconds=None, request_timeout=0.05)
            async with SDQueryServer(index, config) as server:
                q = _query(index, 30)
                with pytest.raises(RequestTimeout) as excinfo:
                    await server.submit(q.point, k=q.k)
                return excinfo.value

        err = asyncio.run(scenario())
        assert err.timeout == pytest.approx(0.05)

    def test_sentinel_outlives_the_default_deadline(self, small_index):
        index, oracle, _data = small_index

        async def scenario():
            from repro.core.deadline import NO_TIMEOUT

            config = ServingConfig(tick_seconds=None, request_timeout=0.05)
            async with SDQueryServer(index, config) as server:
                q = _query(index, 30)
                future = asyncio.ensure_future(
                    server.submit(
                        q.point,
                        k=q.k,
                        alpha=q.alpha,
                        beta=q.beta,
                        timeout=NO_TIMEOUT,
                    )
                )
                await asyncio.sleep(0.1)  # well past the default deadline
                assert not future.done()  # unbounded: still patiently queued
                await server.coalescer.flush()
                served = await future
                return served, oracle.query(q)

        served, expect = asyncio.run(scenario())
        assert served.result.row_ids == expect.row_ids
        assert served.result.scores == expect.scores

    def test_http_null_timeout_means_unbounded(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            from repro.core.deadline import NO_TIMEOUT

            config = ServingConfig(tick_seconds=None, request_timeout=0.05)
            async with SDQueryServer(index, config) as server:
                host, port = await server.start()

                async def flush_later():
                    await asyncio.sleep(0.1)
                    await server.coalescer.flush()

                flusher = asyncio.ensure_future(flush_later())
                async with ServingClient(host, port) as client:
                    q = _query(index, 31)
                    # The client maps the sentinel to JSON ``"timeout": null``.
                    status, payload = await client.query(
                        q.point, k=q.k, timeout=NO_TIMEOUT
                    )
                await flusher
            return status, payload

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload["degraded"] is False
        assert "coverage" not in payload

    def test_http_omitted_timeout_uses_the_default(self, small_index):
        index, _oracle, _data = small_index

        async def scenario():
            config = ServingConfig(tick_seconds=None, request_timeout=0.05)
            async with SDQueryServer(index, config) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    q = _query(index, 31)
                    return await client.query(q.point, k=q.k)

        status, payload = asyncio.run(scenario())
        assert status == 504
        assert payload["timeout"] == pytest.approx(0.05)


class TestLoadReportOutcomes:
    """Every fired request lands in exactly one outcome bucket, and
    availability has the explicit ``issued`` denominator."""

    @staticmethod
    def _workload(num_requests=16, seed=3):
        from repro.workloads.workload import make_serving_workload

        return make_serving_workload(
            REPULSIVE,
            ATTRACTIVE,
            num_requests=num_requests,
            target_rate=50_000.0,
            k=(3, 5),
            num_tenants=2,
            seed=seed,
        )

    def test_clean_run_is_all_ok(self, small_index):
        from repro.serving.loadgen import run_open_loop

        index, _oracle, _data = small_index
        workload = self._workload()

        async def scenario():
            async with SDQueryServer(index, ServingConfig(tick_seconds=0.0)) as server:
                return await run_open_loop(server, workload, collect=True)

        report = asyncio.run(scenario())
        assert report.issued == 16
        assert report.outcomes == {
            "ok": 16, "degraded": 0, "timeout": 0, "rejected": 0, "error": 0
        }
        assert report.availability == 1.0
        assert report.completed == 16
        assert len(report.responses) == 16
        assert sum(report.outcomes.values()) == report.issued

    def test_rejections_are_counted_not_dropped(self, small_index):
        from repro.serving.loadgen import run_open_loop

        index, _oracle, _data = small_index
        workload = self._workload(num_requests=12)

        async def scenario():
            config = ServingConfig(tick_seconds=0.0, rate=0.001, burst=1.0)
            async with SDQueryServer(index, config) as server:
                return await run_open_loop(server, workload)

        report = asyncio.run(scenario())
        # One token per tenant (two tenants), no refill at this rate: every
        # other request is a counted rejection, not a vanished sample.
        assert report.outcomes["ok"] == 2
        assert report.outcomes["rejected"] == 10
        assert sum(report.outcomes.values()) == report.issued == 12
        assert report.availability == pytest.approx(2 / 12)
        assert report.rejected == 10  # legacy property still reads

    def test_timeouts_are_counted_with_denominator(self, small_index):
        from repro.serving.loadgen import run_open_loop

        index, _oracle, _data = small_index
        workload = self._workload(num_requests=6)

        async def scenario():
            # Manual tick: nothing ever flushes, every request times out.
            async with SDQueryServer(index, ServingConfig(tick_seconds=None)) as server:
                return await run_open_loop(server, workload, timeout=0.02)

        report = asyncio.run(scenario())
        assert report.outcomes["timeout"] == 6
        assert report.availability == 0.0
        assert report.completed == 0
        assert sum(report.outcomes.values()) == report.issued == 6

    def test_unexpected_exceptions_are_tallied_then_reraised(self):
        from repro.serving.loadgen import run_open_loop

        workload = self._workload(num_requests=3)

        class BrokenServer:
            async def submit(self, *args, **kwargs):
                raise ValueError("kernel bug")

        with pytest.raises(ValueError, match="kernel bug"):
            asyncio.run(run_open_loop(BrokenServer(), workload))

    def test_as_dict_reports_outcomes_and_availability(self):
        import numpy as np

        from repro.serving.loadgen import LoadReport

        report = LoadReport(
            latencies=np.asarray([0.001, 0.002]),
            outcomes={"ok": 1, "degraded": 1, "timeout": 1, "rejected": 2, "error": 0},
            issued=5,
            elapsed_seconds=0.5,
        )
        summary = report.as_dict()
        assert summary["issued"] == 5
        assert summary["availability"] == pytest.approx(0.4)
        assert summary["outcomes"]["degraded"] == 1
        # Legacy flat keys stay for existing report readers.
        assert summary["rejected"] == 2
        assert summary["timeouts"] == 1
        assert summary["errors"] == 0

    def test_empty_run_availability_is_one(self):
        import numpy as np

        from repro.serving.loadgen import LoadReport

        report = LoadReport(
            latencies=np.asarray([]),
            outcomes={},
            issued=0,
            elapsed_seconds=0.0,
        )
        assert report.availability == 1.0


class TestDeadlineGroups:
    """The coalescer's min-deadline batching (a batch never runs under a
    budget looser than any member's own)."""

    @staticmethod
    def _pending(index, seed, deadline):
        from repro.serving.coalescer import _Pending

        query = _query(index, seed)
        loop = asyncio.get_event_loop_policy().new_event_loop()
        try:
            future = loop.create_future()
        finally:
            loop.close()
        return _Pending(query=query, key=query_key(query), future=future, deadline=deadline)

    def test_unbounded_members_form_their_own_group(self, small_index):
        from repro.core.deadline import Deadline

        index, _oracle, _data = small_index
        clock = FakeClock()
        tight = Deadline(0.05, clock=clock)
        lax = Deadline(0.06, clock=clock)
        items = [
            self._pending(index, 0, None),
            self._pending(index, 1, lax),
            self._pending(index, 2, tight),
            self._pending(index, 3, None),
        ]
        groups = TickCoalescer._deadline_groups(items)
        assert [deadline for _members, deadline in groups] == [None, tight]
        assert groups[0][0] == [items[0], items[3]]
        # Bounded members sort tightest-first and share the tight anchor
        # (0.06 is within the spread factor of 0.05).
        assert groups[1][0] == [items[2], items[1]]

    def test_wide_spread_splits_into_anchored_groups(self, small_index):
        from repro.core.deadline import Deadline

        index, _oracle, _data = small_index
        clock = FakeClock()
        tight = Deadline(0.01, clock=clock)
        mid = Deadline(0.03, clock=clock)  # within 4x of 0.01
        far = Deadline(2.0, clock=clock)  # beyond the spread: its own group
        items = [
            self._pending(index, 0, far),
            self._pending(index, 1, tight),
            self._pending(index, 2, mid),
        ]
        groups = TickCoalescer._deadline_groups(items)
        assert [deadline for _members, deadline in groups] == [tight, far]
        assert groups[0][0] == [items[1], items[2]]
        assert groups[1][0] == [items[0]]

    def test_each_group_runs_under_its_minimum_deadline(self, small_index):
        """A mixed-deadline drain issues one kernel run per group, each under
        the group's *tightest* member — never the most patient one."""
        from repro.core.deadline import Deadline

        index, _oracle, _data = small_index
        recorded = []

        class RecordingSnapshot:
            supports_deadline = True
            version = 1

            def batch_query(self, queries, deadline=None):
                recorded.append(deadline)
                return index.batch_query(queries)

            def close(self):
                pass

        class RecordingIndex:
            def snapshot(self):
                return RecordingSnapshot()

        async def scenario():
            coalescer = TickCoalescer(RecordingIndex(), tick_seconds=None)
            clock = FakeClock()
            tight = Deadline(0.05, clock=clock)
            lax = Deadline(10.0, clock=clock)
            futures = [
                asyncio.ensure_future(coalescer.submit(_query(index, 0))),
                asyncio.ensure_future(coalescer.submit(_query(index, 1))),
            ]
            await asyncio.sleep(0)
            # Attach heterogeneous deadlines directly (submit's timeout maps
            # to a wall-clock Deadline; the fake clock keeps this exact).
            coalescer._pending[0].deadline = lax
            coalescer._pending[1].deadline = tight
            await coalescer.flush()
            served = await asyncio.gather(*futures)
            await coalescer.close()
            return served, tight, lax

        served, tight, lax = asyncio.run(scenario())
        assert len(served) == 2 and all(s.result is not None for s in served)
        # Two kernel runs: the tight request under its own deadline, the lax
        # one under its own — the lax budget never governs the tight member.
        assert recorded == [tight, lax]

    def test_anchor_expiry_requeues_solvent_members(self, small_index):
        """When a group run stops at its anchor's deadline, members that
        still have budget are re-served instead of timing out with it."""
        from repro.core.deadline import Deadline, DeadlineExceeded

        index, _oracle, _data = small_index
        calls = []

        class ExpiringSnapshot:
            supports_deadline = True
            version = 1

            def batch_query(self, queries, deadline=None):
                calls.append((len(queries), deadline))
                # The first run burns through the anchor's budget mid-kernel.
                clock.advance(0.06)
                if deadline is not None and deadline.expired:
                    raise DeadlineExceeded(deadline.budget)
                return index.batch_query(queries)

            def close(self):
                pass

        class ExpiringIndex:
            def snapshot(self):
                return ExpiringSnapshot()

        clock = FakeClock()

        async def scenario():
            coalescer = TickCoalescer(ExpiringIndex(), tick_seconds=None)
            anchor = Deadline(0.05, clock=clock)
            solvent = Deadline(0.15, clock=clock)  # within the spread: grouped
            futures = [
                asyncio.ensure_future(coalescer.submit(_query(index, 0))),
                asyncio.ensure_future(coalescer.submit(_query(index, 1))),
            ]
            await asyncio.sleep(0)
            coalescer._pending[0].deadline = anchor
            coalescer._pending[1].deadline = solvent
            await coalescer.flush()
            results = await asyncio.gather(*futures, return_exceptions=True)
            await coalescer.close()
            return results, coalescer.timeouts, coalescer.served

        results, timeouts, served = asyncio.run(scenario())
        # The expired anchor gets RequestTimeout; the solvent member was
        # re-served in a follow-up pass and still got its answer.
        assert isinstance(results[0], RequestTimeout)
        assert not isinstance(results[1], Exception)
        assert timeouts == 1 and served == 1
        # First run grouped both under the expired anchor; the retry ran the
        # solvent member alone under its own deadline.
        assert [count for count, _d in calls] == [2, 1]


class TestRetryAfterHeader:
    def test_formats_round_up_at_millisecond(self):
        from repro.serving.server import _format_retry_after

        assert _format_retry_after(0.5) == "0.500"
        assert _format_retry_after(0.4996) == "0.500"
        assert _format_retry_after(0.50001) == "0.501"  # never understates
        assert _format_retry_after(0.0) == "0.000"
        assert _format_retry_after(-1.0) == "0.000"  # clamped, not negative

    def test_header_is_at_least_the_bucket_refill(self, small_index):
        """The 429's Retry-After header must round the bucket's actual refill
        time *up*: a client sleeping exactly the header value is admitted."""
        index, _oracle, _data = small_index

        async def scenario():
            config = ServingConfig(
                tick_seconds=None, coalesce=False, rate=3.0, burst=1.0
            )
            async with SDQueryServer(index, config) as server:
                host, port = await server.start()
                async with ServingClient(host, port) as client:
                    point = [0.5, 0.5, 0.5, 0.5]
                    first = await client.query(point, k=3)
                    status, headers, payload = await client.request_full(
                        "POST", "/query", {"point": point, "k": 3}
                    )
                    return first, status, headers, payload

        first, status, headers, payload = asyncio.run(scenario())
        assert first[0] == 200
        assert status == 429
        header = headers["retry-after"]
        # Exact refill time in the JSON body; the header is the ceil at ms.
        assert float(header) >= payload["retry_after"]
        assert float(header) - payload["retry_after"] < 0.001 + 1e-9
        assert len(header.split(".")[1]) == 3
