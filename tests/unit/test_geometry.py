"""Unit tests for projection geometry (repro.core.geometry) and the paper's claims."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import (
    Angle,
    ProjectionKind,
    claim1_holds,
    lower_projection_height,
    projected_point,
    projection_kind,
    score_2d,
    score_from_axis,
    upper_projection_height,
)


class TestAngle:
    def test_from_equal_weights_is_45_degrees(self):
        angle = Angle.from_weights(1.0, 1.0)
        assert angle.degrees == pytest.approx(45.0)
        assert angle.slope == pytest.approx(1.0)

    def test_from_degrees_roundtrip(self):
        for degrees in (0.0, 22.5, 45.0, 67.5, 90.0):
            angle = Angle.from_degrees(degrees)
            assert angle.degrees == pytest.approx(degrees)

    def test_angle_is_normalized(self):
        angle = Angle.from_weights(3.0, 4.0)
        assert math.hypot(angle.cos, angle.sin) == pytest.approx(1.0)
        assert angle.slope == pytest.approx(4.0 / 3.0)

    def test_slope_at_90_degrees_is_infinite(self):
        assert Angle.from_degrees(90.0).slope == math.inf

    def test_rejects_out_of_range_degrees(self):
        with pytest.raises(ValueError):
            Angle.from_degrees(120.0)
        with pytest.raises(ValueError):
            Angle.from_degrees(-5.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            Angle.from_weights(-1.0, 1.0)

    def test_weight_scaling_does_not_change_angle(self):
        a1 = Angle.from_weights(1.0, 2.0)
        a2 = Angle.from_weights(10.0, 20.0)
        assert a1.degrees == pytest.approx(a2.degrees)

    def test_intercepts_match_definition(self):
        angle = Angle.from_weights(1.0, 1.0)
        x, y = 2.0, 5.0
        assert angle.intercept_a(x, y) == pytest.approx((y + x) / math.sqrt(2))
        assert angle.intercept_b(x, y) == pytest.approx((y - x) / math.sqrt(2))

    def test_vectorized_intercepts(self):
        angle = Angle.from_degrees(30.0)
        xs = np.array([0.0, 1.0, 2.0])
        ys = np.array([1.0, 2.0, 3.0])
        w_a, w_b = angle.intercepts(xs, ys)
        for i in range(3):
            assert w_a[i] == pytest.approx(angle.intercept_a(xs[i], ys[i]))
            assert w_b[i] == pytest.approx(angle.intercept_b(xs[i], ys[i]))

    def test_interpolation_coefficients_reconstruct_angle(self):
        lower = Angle.from_degrees(22.5)
        upper = Angle.from_degrees(67.5)
        target = Angle.from_degrees(40.0)
        mu_l, mu_u = target.interpolation_coefficients(lower, upper)
        assert mu_l >= 0 and mu_u >= 0
        assert mu_l * lower.cos + mu_u * upper.cos == pytest.approx(target.cos)
        assert mu_l * lower.sin + mu_u * upper.sin == pytest.approx(target.sin)

    def test_interpolation_rejects_unbracketed_angle(self):
        lower = Angle.from_degrees(0.0)
        upper = Angle.from_degrees(30.0)
        with pytest.raises(ValueError):
            Angle.from_degrees(60.0).interpolation_coefficients(lower, upper)


class TestProjectionKind:
    def test_equation6_quadrants(self):
        # Query at the origin; Equation 6 of the paper.
        assert projection_kind(1.0, 1.0, 0.0, 0.0) is ProjectionKind.LLP
        assert projection_kind(-1.0, 1.0, 0.0, 0.0) is ProjectionKind.RLP
        assert projection_kind(1.0, -1.0, 0.0, 0.0) is ProjectionKind.LUP
        assert projection_kind(-1.0, -1.0, 0.0, 0.0) is ProjectionKind.RUP

    def test_kind_properties(self):
        assert ProjectionKind.LLP.is_lower and ProjectionKind.LLP.is_left
        assert ProjectionKind.RLP.is_lower and not ProjectionKind.RLP.is_left
        assert not ProjectionKind.LUP.is_lower and ProjectionKind.LUP.is_left
        assert not ProjectionKind.RUP.is_lower and not ProjectionKind.RUP.is_left


class TestProjectionHeights:
    def test_heights_at_45_degrees(self):
        angle = Angle.from_weights(1.0, 1.0)
        # Point (3, 5), axis at x=0: geometric projected y-values are 5 -+ 3.
        lower = lower_projection_height(angle, 3.0, 5.0, 0.0) / angle.cos
        upper = upper_projection_height(angle, 3.0, 5.0, 0.0) / angle.cos
        assert lower == pytest.approx(2.0)
        assert upper == pytest.approx(8.0)

    def test_projected_point_lies_on_axis(self):
        angle = Angle.from_weights(2.0, 1.0)
        qx, qy = 0.5, 0.5
        px, py = 0.9, 0.8
        x_proj, _ = projected_point(angle, px, py, qx, qy)
        assert x_proj == qx

    def test_projected_point_undefined_at_90_degrees(self):
        angle = Angle.from_degrees(90.0)
        with pytest.raises(ValueError):
            projected_point(angle, 1.0, 1.0, 0.0, 0.0)


class TestClaims:
    """Claims 1-3 of the paper, checked on deterministic configurations."""

    def test_claim1_negative_score(self):
        angle = Angle.from_weights(1.0, 1.0)
        # q lies between the two projected points of p: score must be <= 0.
        px, py, qx, qy = 0.0, 0.0, 1.0, 0.5
        assert claim1_holds(angle, px, py, qx, qy)
        assert score_2d(angle, px, py, qx, qy) <= 0

    def test_claim2_score_equals_projected_point_score(self):
        angle = Angle.from_weights(1.0, 1.0)
        # p does not satisfy Claim 1 (its lower projection stays above the query).
        px, py, qx, qy = 1.0, 5.0, 0.0, 1.0
        assert not claim1_holds(angle, px, py, qx, qy)
        direct = score_2d(angle, px, py, qx, qy)
        via_axis = score_from_axis(angle, px, py, qx, qy)
        assert direct == pytest.approx(via_axis)

    def test_claim3_score_from_projection_when_claim1_holds(self):
        angle = Angle.from_weights(1.0, 1.0)
        px, py, qx, qy = 0.0, 0.0, 2.0, 1.0
        assert claim1_holds(angle, px, py, qx, qy)
        assert score_2d(angle, px, py, qx, qy) == pytest.approx(
            score_from_axis(angle, px, py, qx, qy)
        )

    @pytest.mark.parametrize("degrees", [0.0, 15.0, 45.0, 75.0, 90.0])
    def test_score_from_axis_always_matches_direct_score(self, degrees, rng):
        angle = Angle.from_degrees(degrees)
        for _ in range(200):
            px, py, qx, qy = rng.uniform(-5, 5, size=4)
            assert score_2d(angle, px, py, qx, qy) == pytest.approx(
                score_from_axis(angle, px, py, qx, qy), abs=1e-9
            )

    def test_normalized_score_matches_weighted_score(self, rng):
        for _ in range(100):
            alpha, beta = rng.uniform(0.1, 3.0, size=2)
            angle = Angle.from_weights(alpha, beta)
            scale = math.hypot(alpha, beta)
            px, py, qx, qy = rng.uniform(-2, 2, size=4)
            weighted = alpha * abs(py - qy) - beta * abs(px - qx)
            assert scale * angle.normalized_score(px - qx, py - qy) == pytest.approx(weighted)
