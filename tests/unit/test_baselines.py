"""Unit tests for the baseline algorithms (sequential scan, TA, BRS, PE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BRSTopK,
    ProgressiveExplorationTopK,
    SequentialScan,
    ThresholdAlgorithm,
)
from repro.core.query import SDQuery
from tests.conftest import assert_same_scores

BASELINES = [SequentialScan, ThresholdAlgorithm, BRSTopK, ProgressiveExplorationTopK]


def make_query(point, k=5, alpha=None, beta=None):
    return SDQuery.simple(point, repulsive=[0, 1], attractive=[2, 3], k=k, alpha=alpha, beta=beta)


class TestSequentialScan:
    def test_returns_k_best_scores(self, small_4d_dataset):
        scan = SequentialScan(small_4d_dataset, [0, 1], [2, 3])
        query = make_query([0.5] * 4, k=10)
        result = scan.query(query)
        assert len(result) == 10
        assert result.scores == sorted(result.scores, reverse=True)
        assert result.candidates_examined == len(small_4d_dataset)

    def test_k_larger_than_dataset(self, rng):
        data = rng.random((5, 4))
        scan = SequentialScan(data, [0, 1], [2, 3])
        assert len(scan.query(make_query([0.0] * 4, k=50))) == 5

    def test_respects_row_ids(self, rng):
        data = rng.random((20, 4))
        scan = SequentialScan(data, [0, 1], [2, 3], row_ids=range(100, 120))
        result = scan.query(make_query([0.0] * 4, k=3))
        assert all(100 <= row < 120 for row in result.row_ids)

    def test_rejects_role_mismatch(self, small_4d_dataset):
        scan = SequentialScan(small_4d_dataset, [0, 1], [2, 3])
        bad = SDQuery.simple([0.0] * 4, repulsive=[0], attractive=[1], k=1)
        with pytest.raises(ValueError):
            scan.query(bad)

    def test_rejects_dimension_mismatch(self, small_4d_dataset):
        scan = SequentialScan(small_4d_dataset, [0, 1], [2, 3])
        bad = SDQuery.simple([0.0] * 5, repulsive=[0, 1], attractive=[2, 3], k=1)
        with pytest.raises(ValueError):
            scan.query(bad)


@pytest.mark.parametrize("baseline_cls", [ThresholdAlgorithm, BRSTopK, ProgressiveExplorationTopK])
class TestBaselineCorrectness:
    def test_matches_oracle_on_random_queries(self, baseline_cls, small_4d_dataset, rng):
        oracle = SequentialScan(small_4d_dataset, [0, 1], [2, 3])
        algorithm = baseline_cls(small_4d_dataset, [0, 1], [2, 3])
        for _ in range(8):
            query = make_query(
                rng.random(4), k=int(rng.integers(1, 12)),
                alpha=rng.uniform(0.1, 2.0, 2), beta=rng.uniform(0.1, 2.0, 2),
            )
            assert_same_scores(algorithm.query(query), oracle.query(query))

    def test_query_point_far_outside_data(self, baseline_cls, small_4d_dataset):
        oracle = SequentialScan(small_4d_dataset, [0, 1], [2, 3])
        algorithm = baseline_cls(small_4d_dataset, [0, 1], [2, 3])
        query = make_query([10.0, -10.0, 5.0, -5.0], k=7)
        assert_same_scores(algorithm.query(query), oracle.query(query))

    def test_duplicate_points(self, baseline_cls):
        data = np.tile(np.array([[0.1, 0.2, 0.3, 0.4]]), (20, 1))
        oracle = SequentialScan(data, [0, 1], [2, 3])
        algorithm = baseline_cls(data, [0, 1], [2, 3])
        query = make_query([0.5] * 4, k=5)
        assert_same_scores(algorithm.query(query), oracle.query(query))

    def test_stats_report_memory(self, baseline_cls, small_4d_dataset):
        algorithm = baseline_cls(small_4d_dataset, [0, 1], [2, 3])
        stats = algorithm.stats()
        assert stats.num_points == len(small_4d_dataset)
        assert stats.memory_bytes > 0


class TestThresholdAlgorithmSpecifics:
    def test_prunes_compared_to_scan(self, rng):
        """TA should terminate before scoring every point on easy workloads."""
        data = rng.random((5000, 2))
        ta = ThresholdAlgorithm(data, [0], [1])
        query = SDQuery.simple([0.5, 0.5], repulsive=[0], attractive=[1], k=1)
        result = ta.query(query)
        assert result.full_evaluations < len(data)

    def test_single_dimension_query(self, rng):
        data = rng.random((200, 2))
        ta = ThresholdAlgorithm(data, [0], [])
        oracle = SequentialScan(data, [0], [])
        query = SDQuery.simple([0.5, 0.5], repulsive=[0], attractive=[], k=3)
        assert_same_scores(ta.query(query), oracle.query(query))


class TestBRSSpecifics:
    def test_visits_few_nodes_for_small_k(self, rng):
        data = rng.random((5000, 2))
        brs = BRSTopK(data, [0], [1])
        query = SDQuery.simple([0.5, 0.5], repulsive=[0], attractive=[1], k=1)
        result = brs.query(query)
        assert result.nodes_visited < brs.tree.stats().num_nodes

    def test_insert_and_delete_roundtrip(self, rng):
        data = rng.random((100, 4))
        brs = BRSTopK(data, [0, 1], [2, 3])
        brs.insert([2.0, 2.0, 0.5, 0.5], row_id=1000)
        query = make_query([0.0, 0.0, 0.5, 0.5], k=1)
        assert brs.query(query).row_ids == [1000]
        assert brs.delete(1000, [2.0, 2.0, 0.5, 0.5])
        assert brs.query(query).row_ids != [1000]

    def test_custom_node_capacity(self, rng):
        data = rng.random((200, 2))
        brs = BRSTopK(data, [0], [1], node_capacity=8)
        assert brs.tree.node_capacity == 8


class TestPESpecifics:
    def test_budget_fallback_is_exact(self, rng):
        """Even when PE degenerates to a scan it must stay exact."""
        data = rng.random((800, 6))
        pe = ProgressiveExplorationTopK(data, [0, 1, 2], [3, 4, 5])
        oracle = SequentialScan(data, [0, 1, 2], [3, 4, 5])
        query = SDQuery.simple(rng.random(6), repulsive=[0, 1, 2], attractive=[3, 4, 5], k=10)
        assert_same_scores(pe.query(query), oracle.query(query))

    def test_insert_updates_sorted_structures(self, rng):
        data = rng.random((50, 4))
        pe = ProgressiveExplorationTopK(data, [0, 1], [2, 3])
        pe.insert([5.0, 5.0, 0.5, 0.5], row_id=999)
        query = make_query([0.0, 0.0, 0.5, 0.5], k=1)
        assert pe.query(query).row_ids == [999]

    def test_insert_rejects_wrong_dimensionality(self, rng):
        pe = ProgressiveExplorationTopK(rng.random((10, 4)), [0, 1], [2, 3])
        with pytest.raises(ValueError):
            pe.insert([1.0, 2.0], row_id=100)

    def test_empty_dataset(self):
        pe = ProgressiveExplorationTopK(np.zeros((0, 4)), [0, 1], [2, 3])
        result = pe.query(make_query([0.0] * 4, k=3))
        assert len(result) == 0
