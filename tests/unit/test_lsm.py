"""Unit tests for the LSM maintenance layer (``repro.core.lsm``).

Covers the copy-on-write :class:`DeltaState`, flush/compact structure
transitions and their counters, the size-tiered planning policy, the
delta-absorbed-delete accounting regression (deletes that never reach a
level must not count as level garbage), the inline hard-cap relief valve,
the durability takeover (``auto_compaction=False``) contract, and the
no-stop-the-world guarantee: the default write path never reflattens.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.lsm import (
    COMPACTION_MODES,
    DeltaState,
    LsmSession,
    LsmWorld,
    validate_compaction,
)
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex

pytestmark = pytest.mark.lsm

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


def build_index(rows: int = 40, seed: int = 7, **kwargs) -> SDIndex:
    rng = np.random.default_rng(seed)
    data = rng.random((rows, NUM_DIMS))
    kwargs.setdefault("flush_rows", 8)
    kwargs.setdefault("fanout", 2)
    kwargs.setdefault("background_compaction", False)
    return SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE, **kwargs)


def session_of(index: SDIndex) -> LsmSession:
    return index._aggregator.serving_session()


def check_against_oracle(index: SDIndex, seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    with index.snapshot() as snapshot:
        rows, matrix = snapshot.frozen()
    oracle = SequentialScan(
        matrix, REPULSIVE, ATTRACTIVE, row_ids=[int(r) for r in rows]
    )
    for point in rng.random((4, NUM_DIMS)):
        query = SDQuery.simple(
            point=point, repulsive=REPULSIVE, attractive=ATTRACTIVE, k=5
        )
        got = index.query(query)
        want = oracle.query(query)
        assert got.row_ids == want.row_ids
        assert got.scores == want.scores


class TestValidateCompaction:
    def test_known_modes_pass_through(self):
        for mode in COMPACTION_MODES:
            assert validate_compaction(mode) == mode

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown compaction mode"):
            validate_compaction("levelled")

    def test_index_constructor_validates(self):
        with pytest.raises(ValueError, match="unknown compaction mode"):
            build_index(compaction="nope")


class TestDeltaState:
    def scored(self):
        return set(REPULSIVE) | set(ATTRACTIVE)

    def test_empty(self):
        delta = DeltaState.empty(NUM_DIMS, self.scored())
        assert delta.num_live == 0
        assert delta.dead == 0
        assert list(delta.locate_live(np.asarray([5], dtype=np.int64))) == [-1]

    def test_inserts_are_copy_on_write(self):
        empty = DeltaState.empty(NUM_DIMS, self.scored())
        rows = np.asarray([10, 3], dtype=np.int64)
        matrix = np.asarray([[0.1] * NUM_DIMS, [0.2] * NUM_DIMS])
        grown = empty.with_inserts(rows, matrix)
        assert empty.num_live == 0 and len(empty.rows) == 0
        assert grown.num_live == 2
        assert grown.dead == 0
        # Sorted lookup structures cover the new rows.
        at = grown.locate_live(np.asarray([3, 10, 11], dtype=np.int64))
        assert at[0] == 1 and at[1] == 0 and at[2] == -1
        for dim in self.scored():
            np.testing.assert_array_equal(
                grown.columns_by_dim[dim], matrix[:, dim]
            )

    def test_deletes_clear_bits_without_mutating_parent(self):
        empty = DeltaState.empty(NUM_DIMS, self.scored())
        rows = np.asarray([1, 2, 3], dtype=np.int64)
        grown = empty.with_inserts(rows, np.zeros((3, NUM_DIMS)))
        shrunk = grown.with_deletes(np.asarray([1], dtype=np.int64))
        assert grown.num_live == 3  # parent untouched
        assert shrunk.num_live == 2
        assert shrunk.dead == 1
        assert shrunk.locate_live(np.asarray([2], dtype=np.int64))[0] == -1
        # Arrays are shared, only the mask is copied.
        assert shrunk.rows is grown.rows
        assert shrunk.matrix is grown.matrix


class TestSessionRouting:
    def test_default_session_is_lsm(self):
        index = build_index()
        assert index.compaction == "size_tiered"
        assert isinstance(session_of(index), LsmSession)

    def test_legacy_knob_restores_in_place_session(self):
        index = build_index(compaction="legacy")
        session = session_of(index)
        assert not isinstance(session, LsmSession)

    def test_lsm_requires_snapshot_concurrency(self):
        index = build_index(concurrency="unsafe")
        session = session_of(index)
        # unsafe concurrency cannot publish epochs; routing falls back.
        assert not isinstance(session, LsmSession)


class TestFlushAndCompact:
    def test_initial_world_is_single_level(self):
        index = build_index(rows=20)
        structure = session_of(index).structure()
        assert len(structure["levels"]) == 1
        assert structure["levels"][0]["live"] == 20
        assert structure["delta_live"] == 0

    def test_flush_folds_delta_into_new_level(self):
        index = build_index(rows=20, flush_rows=100)
        session = session_of(index)
        index.bulk_insert(np.random.default_rng(1).random((5, NUM_DIMS)))
        assert session.structure()["delta_live"] == 5
        assert index.flush() is True
        structure = session.structure()
        assert structure["delta_live"] == 0
        assert [lvl["live"] for lvl in structure["levels"]] == [20, 5]
        assert session.flushes == 1
        # Empty delta: nothing to flush, nothing published.
        assert index.flush() is False
        assert session.flushes == 1
        check_against_oracle(index)

    def test_compact_merges_named_levels_and_keeps_others(self):
        index = build_index(rows=20, flush_rows=100)
        session = session_of(index)
        rng = np.random.default_rng(2)
        index.bulk_insert(rng.random((4, NUM_DIMS)))
        index.flush()
        index.bulk_insert(rng.random((6, NUM_DIMS)))
        index.flush()
        seqs = [lvl["seq"] for lvl in session.structure()["levels"]]
        assert len(seqs) == 3
        merged = index.compact(seqs[1:])
        assert merged == tuple(seqs[1:])
        structure = session.structure()
        assert len(structure["levels"]) == 2
        # The untouched level keeps its seq identity.
        assert structure["levels"][0]["seq"] == seqs[0]
        assert {lvl["live"] for lvl in structure["levels"]} == {20, 10}
        assert session.compactions == 1
        check_against_oracle(index)

    def test_compact_single_clean_level_is_a_noop(self):
        index = build_index(rows=12)
        session = session_of(index)
        seqs = [lvl["seq"] for lvl in session.structure()["levels"]]
        assert index.compact(seqs) is None
        assert session.compactions == 0

    def test_tombstone_only_compaction_drops_garbage(self):
        index = build_index(rows=16, flush_rows=100)
        session = session_of(index)
        # Stay under the 25 % garbage trigger so the auto compactor does not
        # collect before we do (3 dead / 13 live).
        index.bulk_delete([0, 1, 2])
        structure = session.structure()
        assert structure["levels"][0]["tombstoned"] == 3
        seqs = [lvl["seq"] for lvl in structure["levels"]]
        assert index.compact(seqs) == tuple(seqs)
        structure = session.structure()
        assert structure["levels"][0]["tombstoned"] == 0
        assert structure["levels"][0]["live"] == 13
        check_against_oracle(index)

    def test_garbage_trigger_compacts_automatically(self):
        index = build_index(rows=16, flush_rows=100)
        session = session_of(index)
        # 6 dead / 10 live crosses the 25 % garbage threshold: the inline
        # auto compactor collects immediately — the legacy reflatten
        # trigger survives as one compaction trigger among several.
        index.bulk_delete(list(range(6)))
        structure = session.structure()
        assert structure["levels"][0]["tombstoned"] == 0
        assert structure["levels"][0]["live"] == 10
        assert session.compactions == 1
        check_against_oracle(index)

    def test_maintenance_stats_expose_layout_and_counters(self):
        index = build_index(rows=20)
        session = session_of(index)  # materialize before the churn
        index.bulk_insert(np.random.default_rng(5).random((30, NUM_DIMS)))
        stats = session.maintenance_stats()
        for key in (
            "levels",
            "delta_rows",
            "delta_live",
            "flushes",
            "compactions",
            "delta_absorbed_deletes",
        ):
            assert key in stats
        assert stats["flushes"] >= 1  # inline auto maintenance ran


class TestAutoMaintenance:
    def test_inline_auto_flush_triggers_at_threshold(self):
        index = build_index(rows=10, flush_rows=4)
        session = session_of(index)
        index.bulk_insert(np.random.default_rng(4).random((9, NUM_DIMS)))
        structure = session.structure()
        assert structure["delta_live"] < 4
        assert session.flushes >= 1
        check_against_oracle(index)

    def test_size_tiered_policy_bounds_level_count(self):
        index = build_index(rows=16, flush_rows=4, fanout=2)
        session = session_of(index)  # materialize before the churn
        rng = np.random.default_rng(6)
        for _ in range(20):
            index.bulk_insert(rng.random((5, NUM_DIMS)))
        structure = session.structure()
        # 20 flushes without merging would leave ~21 levels; the tiered
        # policy keeps the count logarithmic in the data size.
        assert len(structure["levels"]) <= 8
        assert session.flushes >= 10
        assert session.compactions >= 1
        check_against_oracle(index)

    def test_takeover_disables_scheduling(self):
        index = build_index(rows=10, flush_rows=4)
        session = session_of(index)
        index.set_auto_compaction(False)
        index.bulk_insert(np.random.default_rng(8).random((12, NUM_DIMS)))
        assert session.structure()["delta_live"] == 12
        assert session.flushes == 0
        # The explicit surface still works and reports ops in apply order.
        ops = index.lsm_maintain()
        assert ops and ops[0] == ("flush",)
        assert session.structure()["delta_live"] == 0
        check_against_oracle(index)

    def test_hard_cap_flushes_inline_while_compactor_busy(self):
        index = build_index(rows=10, flush_rows=4, background_compaction=True)
        session = session_of(index)
        gate = threading.Event()
        busy = threading.Thread(target=gate.wait, daemon=True)
        busy.start()
        try:
            # Pose as an in-flight compactor that has fallen behind.
            session._compactor = busy
            index.bulk_insert(
                np.random.default_rng(9).random((40, NUM_DIMS))
            )  # >= 8 * flush_rows
            assert session.structure()["delta_live"] == 0
            assert session.flushes >= 1
        finally:
            gate.set()
            busy.join()
            session._compactor = None
        check_against_oracle(index)

    def test_no_reflatten_on_default_write_path(self):
        """The tentpole guarantee: no stop-the-world rebuilds under churn."""
        index = build_index(rows=60, flush_rows=8)
        session = session_of(index)
        rng = np.random.default_rng(10)
        next_row = 60
        for _ in range(30):
            index.bulk_insert(
                rng.random((6, NUM_DIMS)),
                row_ids=list(range(next_row, next_row + 6)),
            )
            next_row += 6
            with index.snapshot() as snapshot:
                live_rows, _ = snapshot.frozen()
            victims = rng.choice(live_rows, size=4, replace=False)
            index.bulk_delete([int(r) for r in victims])
        assert session.reflattens == 0
        assert session.flushes > 0
        check_against_oracle(index)

    def test_churn_leaks_no_epochs(self):
        index = build_index(rows=30, flush_rows=4)
        session = session_of(index)
        rng = np.random.default_rng(11)
        for step in range(12):
            index.bulk_insert(rng.random((5, NUM_DIMS)))
            index.query(
                SDQuery.simple(
                    point=rng.random(NUM_DIMS),
                    repulsive=REPULSIVE,
                    attractive=ATTRACTIVE,
                    k=3,
                )
            )
        index.quiesce_maintenance()
        assert session.epochs.live_epochs == 1
        assert session.epochs.pinned_readers == 0


class TestDeltaAbsorbedDeletes:
    """Satellite regression: a delete absorbed by the delta is not garbage.

    The in-place session double-counts an insert+delete round trip (one
    ``appended`` plus one ``tombstoned`` for a net-zero row), which inflates
    ``garbage_fraction`` and triggers spurious reflattens.  The LSM world
    must count such a row in *neither* backlog.
    """

    def test_absorbed_delete_adds_no_level_garbage(self):
        index = build_index(rows=20, flush_rows=100)
        session = session_of(index)
        rows = list(range(100, 108))
        index.bulk_insert(
            np.random.default_rng(12).random((8, NUM_DIMS)), row_ids=rows
        )
        index.bulk_delete(rows[:5])
        assert session.delta_absorbed_deletes == 5
        world = session._world
        assert world.tombstoned == 0  # never reached a level
        assert world.appended == 3  # only the still-live delta rows pend
        # 3 pending rows over 23 live — the five dead rows contribute nothing.
        assert world.garbage_fraction() == pytest.approx(3 / 23)

    def test_fully_dead_delta_flushes_to_nothing(self):
        index = build_index(rows=10, flush_rows=100)
        session = session_of(index)
        rows = [50, 51, 52]
        index.bulk_insert(
            np.random.default_rng(13).random((3, NUM_DIMS)), row_ids=rows
        )
        index.bulk_delete(rows)
        levels_before = len(session.structure()["levels"])
        assert index.flush() is True  # drops the dead arrays
        structure = session.structure()
        assert len(structure["levels"]) == levels_before
        assert structure["delta_rows"] == 0
        check_against_oracle(index)

    def test_absorbed_deletes_do_not_trigger_garbage_compaction(self):
        index = build_index(rows=20, flush_rows=1000)
        session = session_of(index)
        rng = np.random.default_rng(14)
        # Insert+delete churn confined to the delta: no level ever gains a
        # tombstone, so the garbage-collection trigger must stay silent.
        for i in range(50):
            row = 1000 + i
            index.insert(rng.random(NUM_DIMS), row_id=row)
            index.delete(row)
        assert session.delta_absorbed_deletes == 50
        assert session.compactions == 0
        assert session._world.tombstoned == 0


class TestLsmWorldAggregates:
    def test_world_surface_matches_population(self):
        index = build_index(rows=25, flush_rows=6)
        rng = np.random.default_rng(15)
        index.bulk_insert(rng.random((10, NUM_DIMS)), row_ids=list(range(25, 35)))
        index.bulk_delete([0, 1, 2])
        world = session_of(index)._world
        assert isinstance(world, LsmWorld)
        assert world.num_live == 32
        ids = world.live_row_ids()
        assert len(ids) == 32 and len(np.unique(ids)) == 32
        assert world.live_matrix().shape == (32, NUM_DIMS)
        assert world.level(-1) is None
