"""Unit tests for the persistence subsystem: WAL, snapshots, DurableIndex.

The crash-injection scenarios live in ``tests/integration/test_crash_recovery.py``
and the randomized build/update/checkpoint/crash sequences in
``tests/property/test_persistence_properties.py``; this file locks the
building blocks: record encoding, torn-tail semantics, snapshot round-trips
on all four engines (full and mmap loads), the read-only copy-on-write
regression, and the durable wrapper's checkpoint/recover cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.persistence import (
    FORMAT_VERSION,
    OP_BULK_DELETE,
    OP_BULK_INSERT,
    OP_DELETE,
    OP_INSERT,
    OP_REBALANCE,
    DurableIndex,
    SnapshotFormatError,
    WriteAheadLog,
    load_engine,
    save_engine,
)
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)


def same_answers(expected, got):
    """Bit-identical result check: same ids, same float bits, same order."""
    assert len(expected.results) == len(got.results)
    for a, b in zip(expected.results, got.results):
        assert [(m.row_id, m.score) for m in a.matches] == [
            (m.row_id, m.score) for m in b.matches
        ]


def oracle_for(store, queries, k):
    rows = sorted(store)
    scan = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    return scan.batch_query(queries, k=k)


# ------------------------------------------------------------------------ WAL
class TestWriteAheadLog:
    def test_roundtrip_all_ops(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        point = np.asarray([[1.5, -2.25, 3.0, 0.5]])
        block = np.asarray([[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]])
        assert wal.append(OP_INSERT, [7], point) == 1
        assert wal.append(OP_DELETE, [7]) == 2
        assert wal.append(OP_BULK_INSERT, [8, 9], block) == 3
        assert wal.append(OP_BULK_DELETE, [8, 9]) == 4
        assert wal.append(OP_REBALANCE, []) == 5
        records = list(wal.replay())
        wal.close()
        assert [r[0] for r in records] == [1, 2, 3, 4, 5]
        assert [r[1] for r in records] == [
            OP_INSERT,
            OP_DELETE,
            OP_BULK_INSERT,
            OP_BULK_DELETE,
            OP_REBALANCE,
        ]
        np.testing.assert_array_equal(records[0][3], point)
        np.testing.assert_array_equal(records[2][2], [8, 9])
        np.testing.assert_array_equal(records[2][3], block)
        assert records[1][3] is None

    def test_replay_after_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for row in range(5):
            wal.append(OP_DELETE, [row])
        assert [lsn for lsn, *_ in wal.replay(after_lsn=3)] == [4, 5]
        wal.close()

    def test_reopen_continues_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(OP_DELETE, [1])
        wal.close()
        wal = WriteAheadLog(tmp_path / "wal.log")
        assert wal.end_lsn == 1
        assert wal.append(OP_DELETE, [2]) == 2
        wal.close()

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + b"\0" * 8)
        with pytest.raises(SnapshotFormatError, match="not a WAL"):
            WriteAheadLog(path)

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(OP_DELETE, [1])
        wal.append(OP_DELETE, [2])
        wal.close()
        blob = path.read_bytes()
        # Chop the final record anywhere inside it: reopen must keep exactly
        # the first record and drop the torn tail.
        path.write_bytes(blob[:-5])
        wal = WriteAheadLog(path)
        assert wal.end_lsn == 1
        assert [lsn for lsn, *_ in wal.replay()] == [1]
        wal.close()

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        offset_after_header = None
        wal.append(OP_DELETE, [1])
        wal.append(OP_DELETE, [2])
        wal.close()
        blob = bytearray(path.read_bytes())
        # Flip one payload byte of the FIRST record (more records follow, so
        # this is not a torn tail — it must raise, not silently truncate).
        blob[16 + 16 + 4] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="corruption"):
            WriteAheadLog(path)

    def test_rotate_drops_prefix_atomically(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(OP_DELETE, [1])
        wal.append(OP_DELETE, [2])
        wal.rotate(2)
        assert wal.end_lsn == 2
        assert list(wal.replay()) == []
        assert wal.append(OP_DELETE, [3]) == 3
        assert [lsn for lsn, *_ in wal.replay(after_lsn=2)] == [3]
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        assert reopened.base_lsn == 2 and reopened.end_lsn == 3
        reopened.close()

    def test_rotate_keeps_racing_tail(self, tmp_path):
        """Records past the rotation base survive verbatim — the mutations
        that raced a checkpoint stream must stay replayable."""
        wal = WriteAheadLog(tmp_path / "wal.log")
        for row in range(1, 6):
            wal.append(OP_DELETE, [row])
        wal.rotate(3)
        assert wal.base_lsn == 3 and wal.end_lsn == 5
        tail = list(wal.replay(after_lsn=3))
        assert [lsn for lsn, *_ in tail] == [4, 5]
        assert [int(ids[0]) for _, _, ids, _ in tail] == [4, 5]
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        assert reopened.base_lsn == 3 and reopened.end_lsn == 5
        reopened.close()

    def test_corrupted_length_field_is_loud(self, tmp_path):
        """An inflated length on a mid-file record must raise, never let the
        bogus extent swallow the following acknowledged records as a 'tail'."""
        import struct

        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(OP_DELETE, [1])
        wal.append(OP_DELETE, [2])
        wal.append(OP_DELETE, [3])
        wal.close()
        blob = bytearray(path.read_bytes())
        # Record 1's header starts at byte 16: lsn u64, length u32 at +8.
        struct.pack_into("<I", blob, 16 + 8, 10_000)
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="corruption"):
            WriteAheadLog(path)

    def test_torn_final_header_truncated(self, tmp_path):
        """A checksum-failing header with nothing after it is a torn write."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(OP_DELETE, [1])
        wal.append(OP_DELETE, [2])
        wal.close()
        blob = bytearray(path.read_bytes())
        record2_header = len(blob) - (20 + 17)  # header(20) + delete payload(17)
        blob[record2_header + 3] ^= 0xFF  # garble record 2's lsn bytes
        path.write_bytes(bytes(blob[: record2_header + 20]))  # header only
        wal = WriteAheadLog(path)
        assert wal.end_lsn == 1
        wal.close()

    def test_torn_final_header_with_payload_after_truncated(self, tmp_path):
        """Out-of-order sector persistence can land a torn final append's
        payload bytes while its header sector is lost: garbage header with
        only non-record bytes after it must still recover as a torn tail."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(OP_DELETE, [1])
        wal.append(OP_DELETE, [2])
        wal.close()
        blob = bytearray(path.read_bytes())
        record2_header = len(blob) - (20 + 17)
        blob[record2_header + 3] ^= 0xFF  # header lost; payload bytes remain
        path.write_bytes(bytes(blob))
        wal = WriteAheadLog(path)
        # Indistinguishable from a torn (unacknowledged) final append, so the
        # tail is dropped rather than bricking the whole store.
        assert wal.end_lsn == 1
        wal.close()

    def test_failed_append_rolls_back(self, tmp_path):
        """A write/fsync failure must not strand bytes that a retried append
        would follow with a duplicate LSN (bricking the next open)."""
        from repro.core import persistence

        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(OP_DELETE, [1])
        boom = {"armed": True}

        def hook(point):
            if point == "wal.append.written" and boom["armed"]:
                boom["armed"] = False
                raise OSError("disk full (injected)")

        persistence.install_fault_hook(hook)
        try:
            with pytest.raises(OSError, match="disk full"):
                wal.append(OP_DELETE, [2])
        finally:
            persistence.install_fault_hook(None)
        assert wal.end_lsn == 1
        assert wal.append(OP_DELETE, [3]) == 2  # retry reuses the freed LSN
        wal.close()
        reopened = WriteAheadLog(path)  # scans cleanly: no stranded duplicate
        assert reopened.end_lsn == 2
        reopened.close()

    def test_rotate_validates_base(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(OP_DELETE, [1])
        with pytest.raises(ValueError, match="cannot rotate"):
            wal.rotate(2)  # past the end of the log
        wal.rotate(1)
        with pytest.raises(ValueError, match="cannot rotate"):
            wal.rotate(0)  # below the rotated base
        wal.close()


# ------------------------------------------------------------ engine snapshots
@pytest.fixture
def dataset(rng):
    return np.random.default_rng(42).random((600, 4))


@pytest.fixture
def queries():
    return np.random.default_rng(43).random((12, 4))


@pytest.mark.parametrize("mmap", [False, True])
def test_sdindex_roundtrip(dataset, queries, tmp_path, mmap):
    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    rid = index.insert(np.full(4, 0.5))
    index.delete(rid)
    index.delete(17)
    expected = index.batch_query(queries, k=5)
    index.save(tmp_path / "snap")
    loaded = SDIndex.load(tmp_path / "snap", mmap=mmap)
    assert len(loaded) == len(index)
    same_answers(expected, loaded.batch_query(queries, k=5))
    # Single-query fast and legacy engines agree on the restored index.
    single = loaded.query(queries[0], k=3)
    legacy = loaded.query(queries[0], k=3, engine="legacy")
    assert [(m.row_id, m.score) for m in single.matches] == [
        (m.row_id, m.score) for m in legacy.matches
    ]


def test_sdindex_restored_bookkeeping(dataset, tmp_path):
    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    index.delete(3)
    index.save(tmp_path / "snap")
    loaded = SDIndex.load(tmp_path / "snap")
    # Deleted ids stay unusable and unreadable, exactly as pre-checkpoint.
    with pytest.raises(KeyError):
        loaded.point(3)
    with pytest.raises(ValueError, match="deleted"):
        loaded.insert(np.zeros(4), row_id=3)
    # Auto-assignment continues above the persisted high-water mark.
    assert loaded.insert(np.zeros(4)) == len(dataset)
    np.testing.assert_array_equal(loaded.point(5), dataset[5])


@pytest.mark.parametrize("concurrency", ["snapshot", "unsafe"])
def test_mmap_loaded_index_accepts_updates(dataset, queries, tmp_path, concurrency):
    """Regression (latent mutability): patching an mmap-restored state must
    route through the copy-on-write clone path — mapped arrays are read-only."""
    index = SDIndex.build(
        dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE, concurrency=concurrency
    )
    index.save(tmp_path / "snap")
    loaded = SDIndex.load(tmp_path / "snap", mmap=True)
    store = {row: dataset[row].copy() for row in range(len(dataset))}
    rng = np.random.default_rng(7)
    for step in range(30):
        if step % 3 == 2:
            victim = sorted(store)[int(rng.integers(len(store)))]
            loaded.delete(victim)
            del store[victim]
        else:
            point = rng.random(4)
            row = loaded.insert(point)
            store[row] = point
    same_answers(oracle_for(store, queries, 5), loaded.batch_query(queries, k=5))


def test_leftover_dim_reflatten_after_load(tmp_path):
    """Regression: restored sorted columns still hold tombstoned rows, so a
    post-load reflatten must refresh them first — mapping a dead id to a live
    position would corrupt (or crash) the rebuilt column state."""
    rng = np.random.default_rng(21)
    data = rng.random((50, 3))
    # One leftover attractive dimension (roles: 1 repulsive, 2 attractive).
    index = SDIndex.build(data, repulsive=(0,), attractive=(1, 2))
    queries = rng.random((6, 3))
    index.batch_query(queries, k=5)
    index.delete(49)  # the max row id: the unchecked searchsorted crash shape
    index.delete(10)  # a middle id: the silently-wrong-position shape
    index.save(tmp_path / "snap")
    for mmap in (False, True):
        loaded = SDIndex.load(tmp_path / "snap", mmap=mmap)
        loaded.batch_query(queries, k=5)
        loaded.refresh_session()  # forces the reflatten that read the columns
        store = {row: data[row] for row in range(50) if row not in (49, 10)}
        scan = SequentialScan(
            np.asarray([store[row] for row in sorted(store)]),
            (0,),
            (1, 2),
            row_ids=sorted(store),
        )
        expected = scan.batch_query(queries, k=5)
        got = loaded.batch_query(queries, k=5)
        for a, b in zip(expected.results, got.results):
            assert [(m.row_id, m.score) for m in a.matches] == [
                (m.row_id, m.score) for m in b.matches
            ]


def test_deferred_trees_stay_lazy_until_needed(dataset, queries, tmp_path):
    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    index.save(tmp_path / "snap")
    loaded = SDIndex.load(tmp_path / "snap", mmap=True)
    loaded.batch_query(queries, k=5)
    loaded.query(queries[0], k=3)
    deferred = loaded.aggregator._pair_indexes
    assert not any(proxy.materialized for proxy in deferred)
    # The first structural need (here: an update patches every pair tree)
    # materializes the real projection trees from the checkpointed rows.
    loaded.insert(np.full(4, 0.25))
    assert all(proxy.materialized for proxy in deferred)


@pytest.mark.parametrize("partitioner", ["hash", "range"])
@pytest.mark.parametrize("mmap", [False, True])
def test_sharded_roundtrip(dataset, queries, tmp_path, partitioner, mmap):
    engine = ShardedIndex(
        dataset,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=3,
        partitioner=partitioner,
    )
    engine.insert(np.full(4, 0.5))
    engine.delete(11)
    expected = engine.batch_query(queries, k=7)
    engine.save(tmp_path / "snap")
    loaded = ShardedIndex.load(tmp_path / "snap", mmap=mmap)
    assert loaded.shard_sizes() == engine.shard_sizes()
    assert loaded.router.assignments() == engine.router.assignments()
    same_answers(expected, loaded.batch_query(queries, k=7))
    # Updates and a rebalance keep serving exactly after restore.
    rid = loaded.insert(np.full(4, 0.75))
    loaded.delete(rid)
    loaded.rebalance()
    same_answers(expected, loaded.batch_query(queries, k=7))
    loaded.close()
    engine.close()


@pytest.mark.parametrize("mmap", [False, True])
def test_topk_roundtrip(tmp_path, mmap):
    rng = np.random.default_rng(5)
    x, y = rng.random(400), rng.random(400)
    index = TopKIndex(x, y)
    index.insert(0.5, 0.5)
    index.delete(7)
    expected = index.batch_query([0.2, 0.9], [0.3, 0.6], k=6, alpha=1.4, beta=0.6)
    save_engine(index, tmp_path / "snap")
    loaded = TopKIndex.load(tmp_path / "snap", mmap=mmap)
    got = loaded.batch_query([0.2, 0.9], [0.3, 0.6], k=6, alpha=1.4, beta=0.6)
    same_answers(expected, got)
    # Updates after restore (clones the read-only view) and the streams
    # oracle (materializes the lazy tree) agree with the flat path.
    loaded.insert(0.41, 0.43)
    loaded.delete(9)
    flat = loaded.query(0.3, 0.7, k=5)
    streams = loaded.query(0.3, 0.7, k=5, strategy="streams")
    assert sorted(m.score for m in flat.matches) == sorted(
        m.score for m in streams.matches
    )


@pytest.mark.parametrize("k", [1, 4])
def test_top1_roundtrip(tmp_path, k):
    rng = np.random.default_rng(6)
    x, y = rng.random(300), rng.random(300)
    index = Top1Index(x, y, k=k, alpha=1.2, beta=0.7)
    index.insert(0.99, 0.01)  # k>1: lands in the pending buffer
    expected = index.batch_query([0.1, 0.5, 0.9], [0.5, 0.2, 0.8])
    index.save(tmp_path / "snap")
    loaded = Top1Index.load(tmp_path / "snap")
    assert len(loaded) == len(index)
    same_answers(expected, loaded.batch_query([0.1, 0.5, 0.9], [0.5, 0.2, 0.8]))
    loaded.insert(0.98, 0.02)
    loaded.delete(5)
    reference = Top1Index(
        np.concatenate([x, [0.99, 0.98]]),
        np.concatenate([y, [0.01, 0.02]]),
        k=k,
        alpha=1.2,
        beta=0.7,
        row_ids=list(range(300)) + [300, 301],
    )
    reference.delete(5)
    same_answers(
        reference.batch_query([0.3, 0.7], [0.4, 0.6]),
        loaded.batch_query([0.3, 0.7], [0.4, 0.6]),
    )


# --------------------------------------------------------------- format guard
def test_unknown_version_raises(dataset, tmp_path):
    import json

    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    index.save(tmp_path / "snap")
    manifest_path = tmp_path / "snap" / "MANIFEST.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="version"):
        SDIndex.load(tmp_path / "snap")


def test_checksum_mismatch_raises(dataset, tmp_path):
    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    index.save(tmp_path / "snap")
    target = tmp_path / "snap" / "arrays" / "matrix.npy"
    blob = bytearray(target.read_bytes())
    blob[-1] ^= 0xFF
    target.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="checksum"):
        SDIndex.load(tmp_path / "snap")
    # mmap loads skip the checksum pass by default but honor verify=True.
    with pytest.raises(SnapshotFormatError, match="checksum"):
        SDIndex.load(tmp_path / "snap", mmap=True, verify=True)


def test_missing_manifest_raises(tmp_path):
    (tmp_path / "snap").mkdir()
    with pytest.raises(SnapshotFormatError, match="manifest"):
        load_engine(tmp_path / "snap")


def test_wrong_engine_kind_raises(dataset, tmp_path):
    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    index.save(tmp_path / "snap")
    with pytest.raises(SnapshotFormatError, match="expected"):
        ShardedIndex.load(tmp_path / "snap")


def test_truncated_array_raises(dataset, tmp_path):
    index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    index.save(tmp_path / "snap")
    target = tmp_path / "snap" / "arrays" / "rows.npy"
    blob = target.read_bytes()
    target.write_bytes(blob[: len(blob) // 2])
    # Size validation runs on every load mode, including mmap.
    for mmap in (False, True):
        with pytest.raises(SnapshotFormatError, match="truncated"):
            SDIndex.load(tmp_path / "snap", mmap=mmap)


# --------------------------------------------------------------- DurableIndex
class TestDurableIndex:
    def test_checkpoint_recover_equivalence(self, dataset, queries, tmp_path):
        rng = np.random.default_rng(11)
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        rows = [durable.insert(rng.random(4)) for _ in range(10)]
        durable.bulk_insert(rng.random((4, 4)))
        durable.checkpoint()
        durable.delete(rows[0])
        durable.bulk_delete(rows[1:3])
        expected = durable.batch_query(queries, k=5)
        durable.close()

        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.last_recovery["replayed"] == 2
        same_answers(expected, recovered.batch_query(queries, k=5))
        # The recovered wrapper keeps journaling: another cycle still agrees.
        recovered.insert(rng.random(4))
        expected2 = recovered.batch_query(queries, k=5)
        recovered.close()
        second = DurableIndex.recover(tmp_path / "dur", mmap=True)
        same_answers(expected2, second.batch_query(queries, k=5))
        second.close()

    def test_checkpoint_rotates_wal_and_prunes(self, dataset, tmp_path):
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        for _ in range(5):
            durable.insert(np.random.default_rng(0).random(4))
        durable.checkpoint()
        assert durable.wal.base_lsn == 5  # rotated: nothing left to replay
        snapshots = sorted(p.name for p in (tmp_path / "dur").glob("snapshot-*"))
        assert snapshots == ["snapshot-000002"]
        durable.close()

    def test_concurrent_checkpoints_serialize(self, dataset, tmp_path):
        """Two racing checkpoints must get distinct snapshot directories and
        leave a recoverable store (regression: unsynchronized seq bump)."""
        import threading

        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        rng = np.random.default_rng(23)
        for _ in range(5):
            durable.insert(rng.random(4))
        barrier = threading.Barrier(2)
        paths = []

        def checkpointer():
            barrier.wait()
            paths.append(durable.checkpoint())

        threads = [threading.Thread(target=checkpointer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(paths)) == 2
        probes = rng.random((4, 4))
        expected = durable.batch_query(probes, k=3)
        durable.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        same_answers(expected, recovered.batch_query(probes, k=3))
        recovered.close()

    def test_checkpoint_rotation_keeps_racing_mutations(self, dataset, tmp_path):
        """Mutations landing while a checkpoint streams survive the rotation
        as the WAL tail (the log stays bounded without requiring quiescence)."""
        from repro.core import persistence

        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        rng = np.random.default_rng(29)
        racing = {"fired": False}

        def race_one_insert(point):
            # Injected between the capture and the CURRENT flip: a mutation
            # racing the stream, exactly what rotation must preserve.
            if point == "snapshot.manifest.before" and not racing["fired"]:
                racing["fired"] = True
                durable.insert(rng.random(4), row_id=9_999)

        persistence.install_fault_hook(race_one_insert)
        try:
            durable.checkpoint()
        finally:
            persistence.install_fault_hook(None)
        assert racing["fired"]
        assert durable.wal.end_lsn == durable.wal.base_lsn + 1  # the tail
        expected = durable.batch_query(rng.random((4, 4)), k=3)
        durable.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.last_recovery["replayed"] == 1
        assert recovered.point(9_999) is not None
        recovered.close()

    def test_save_of_loaded_topk_stays_lazy(self, tmp_path):
        """Checkpointing a freshly loaded TopKIndex must not force the
        deferred projection-tree build (its parameters ride on the spec)."""
        rng = np.random.default_rng(31)
        index = TopKIndex(rng.random(300), rng.random(300))
        index.delete(5)
        index.flat_session()
        save_engine(index, tmp_path / "a")
        loaded = TopKIndex.load(tmp_path / "a", mmap=True)
        save_engine(loaded, tmp_path / "b")
        assert not loaded.tree.materialized
        second = TopKIndex.load(tmp_path / "b")
        # The re-saved snapshot kept the tombstone guard without the build.
        with pytest.raises(ValueError, match="reused"):
            second.insert(0.5, 0.5, row_id=5)
        expected = index.query(0.4, 0.6, k=4)
        got = second.query(0.4, 0.6, k=4)
        assert [(m.row_id, m.score) for m in expected.matches] == [
            (m.row_id, m.score) for m in got.matches
        ]

    def test_create_refuses_existing(self, dataset, tmp_path):
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        DurableIndex.create(index, tmp_path / "dur").close()
        with pytest.raises(FileExistsError):
            DurableIndex.create(index, tmp_path / "dur")

    def test_recover_missing_wal_raises(self, dataset, tmp_path):
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        DurableIndex.create(index, tmp_path / "dur").close()
        (tmp_path / "dur" / "wal.log").unlink()
        with pytest.raises(SnapshotFormatError, match="write-ahead log"):
            DurableIndex.recover(tmp_path / "dur")

    def test_recover_nothing_there_raises(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="CURRENT"):
            DurableIndex.recover(tmp_path / "nowhere")

    def test_extra_payload_roundtrips(self, dataset, tmp_path):
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        durable.checkpoint(extra={"script_step": 42})
        durable.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.last_recovery["extra"] == {"script_step": 42}
        recovered.close()

    def test_sharded_rebalance_journaled(self, dataset, queries, tmp_path):
        engine = ShardedIndex(
            dataset,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=2,
            partitioner="range",
        )
        durable = DurableIndex.create(engine, tmp_path / "dur")
        rng = np.random.default_rng(13)
        for _ in range(8):
            durable.insert(rng.random(4))
        durable.rebalance()
        durable.insert(rng.random(4))
        expected = durable.batch_query(queries, k=5)
        sizes = durable.shard_sizes()
        durable.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.last_recovery["replayed"] == 10
        assert recovered.shard_sizes() == sizes
        same_answers(expected, recovered.batch_query(queries, k=5))
        recovered.close()

    def test_rebuild_is_journaled(self, tmp_path):
        """Regression: an unjournaled rebuild made acknowledged sequences
        unreplayable — delete(5); rebuild(); insert(row_id=5) replays onto a
        tree that never cleared its tombstones and dies mid-recovery."""
        rng = np.random.default_rng(19)
        index = TopKIndex(rng.random(100), rng.random(100))
        durable = DurableIndex.create(index, tmp_path / "dur")
        durable.delete(5)
        durable.rebuild()
        durable.insert(0.5, 0.5, row_id=5)  # legal only after the rebuild
        expected = durable.query(0.4, 0.4, k=5)
        durable.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.last_recovery["replayed"] == 3
        got = recovered.query(0.4, 0.4, k=5)
        assert [(m.row_id, m.score) for m in expected.matches] == [
            (m.row_id, m.score) for m in got.matches
        ]
        recovered.close()

    def test_failed_journal_poisons_wrapper(self, dataset, tmp_path):
        """An op applied to the engine whose append failed leaves live state
        ahead of the journal: further mutations and checkpoints must refuse
        (making the divergence durable), while recover() restores the
        journal-consistent prefix."""
        from repro.core import persistence

        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        durable.insert(np.full(4, 0.25), row_id=5_000)
        boom = {"armed": True}

        def hook(point):
            if point == "wal.append.written" and boom["armed"]:
                boom["armed"] = False
                raise OSError("disk full (injected)")

        persistence.install_fault_hook(hook)
        try:
            with pytest.raises(OSError, match="disk full"):
                durable.insert(np.full(4, 0.75), row_id=6_000)
        finally:
            persistence.install_fault_hook(None)
        # Applied but unjournaled: the live engine answers with it...
        assert durable.point(6_000) is not None
        # ...but the wrapper refuses to deepen the divergence.
        with pytest.raises(RuntimeError, match="poisoned"):
            durable.insert(np.full(4, 0.5))
        with pytest.raises(RuntimeError, match="poisoned"):
            durable.checkpoint()
        durable.wal.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        assert recovered.point(5_000) is not None  # journaled: survives
        with pytest.raises(KeyError):
            recovered.point(6_000)  # unjournaled: dropped, consistently
        recovered.close()

    def test_insert_signature_matches_wrapped_engines(self, dataset, tmp_path):
        """Positional row_id works exactly as on the bare engines."""
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(index, tmp_path / "dur")
        assert durable.insert(np.full(4, 0.5), 7_000) == 7_000
        with pytest.raises(TypeError, match="positional coordinate"):
            durable.insert(np.full(4, 0.5), 1, 2)
        durable.close()
        rng = np.random.default_rng(37)
        topk = TopKIndex(rng.random(50), rng.random(50))
        durable2d = DurableIndex.create(topk, tmp_path / "dur2")
        assert durable2d.insert(0.5, 0.5, 8_000) == 8_000
        durable2d.close()

    def test_2d_engines_journal(self, tmp_path):
        rng = np.random.default_rng(17)
        x, y = rng.random(200), rng.random(200)
        index = TopKIndex(x, y)
        durable = DurableIndex.create(index, tmp_path / "dur")
        row = durable.insert(0.5, 0.5)
        durable.delete(row)
        durable.insert(0.25, 0.75)
        expected = durable.query(0.4, 0.4, k=5)
        durable.close()
        recovered = DurableIndex.recover(tmp_path / "dur")
        got = recovered.query(0.4, 0.4, k=5)
        assert [(m.row_id, m.score) for m in expected.matches] == [
            (m.row_id, m.score) for m in got.matches
        ]
        recovered.close()


# -------------------------------------------------------------- mmap lifecycle
class TestMmapLifecycle:
    """File-handle discipline of mmap-loaded snapshots: ``close()`` drops the
    maps (idempotently), so worker recycling / snapshot pruning never hits a
    file-still-mapped error — and never unmaps under a live reader."""

    def _saved(self, dataset, tmp_path):
        index = SDIndex.build(dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        save_engine(index, tmp_path / "snap")
        return tmp_path / "snap"

    def test_close_releases_all_maps(self, dataset, queries, tmp_path):
        import shutil

        snap = self._saved(dataset, tmp_path)
        loaded = load_engine(snap, mmap=True)
        guard = loaded._mmap_guard
        assert guard.num_maps > 0 and not guard.closed
        loaded.query(queries[0], k=3)  # exercise the maps before closing
        loaded.close()
        assert guard.closed and guard.leaked == 0
        # The point of the exercise: the snapshot files are unmapped and the
        # directory can be pruned out from under the (closed) engine.
        shutil.rmtree(snap)

    def test_close_is_idempotent_and_context_managed(self, dataset, tmp_path):
        snap = self._saved(dataset, tmp_path)
        with load_engine(snap, mmap=True) as loaded:
            assert not loaded.closed
        assert loaded.closed
        loaded.close()  # second close is a no-op
        assert loaded._mmap_guard.leaked == 0

    def test_queries_after_close_raise(self, dataset, queries, tmp_path):
        snap = self._saved(dataset, tmp_path)
        loaded = load_engine(snap, mmap=True)
        loaded.close()
        with pytest.raises(RuntimeError, match="closed"):
            loaded.query(queries[0], k=3)
        with pytest.raises(RuntimeError, match="closed"):
            loaded.insert(np.full(4, 0.5), row_id=77_000)

    def test_pinned_reader_survives_close(self, dataset, queries, tmp_path):
        """close() must never unmap under a live pin: the pinned snapshot's
        arrays stay readable and are *counted* as leaked, not torn down."""
        from repro.core.batch import BatchQuerySpec
        from repro.core.query import SDQuery

        snap = self._saved(dataset, tmp_path)
        loaded = load_engine(snap, mmap=True)
        view = loaded.aggregator.serving_session().snapshot()
        spec = BatchQuerySpec.coerce(
            REPULSIVE,
            ATTRACTIVE,
            4,
            [
                SDQuery.simple(
                    point=queries[0],
                    repulsive=REPULSIVE,
                    attractive=ATTRACTIVE,
                    k=3,
                )
            ],
        )
        before = view.run(spec)
        loaded.close()
        assert loaded._mmap_guard.leaked > 0  # live pin kept its maps
        after = view.run(spec)
        same_answers(before, after)
        view.close()

    def test_pending_reflatten_materializes_before_unmap(self, dataset, tmp_path):
        """A dirty session (reflatten pending) must be materialized into RAM
        before the maps drop — closing can't invalidate the flattened views
        the next serve would rebuild from."""
        snap = self._saved(dataset, tmp_path)
        loaded = load_engine(snap, mmap=True)
        loaded.insert(np.full(4, 0.25), row_id=50_000)  # dirties the session
        loaded.close()
        assert loaded._mmap_guard.closed

    def test_non_mmap_load_has_no_guard(self, dataset, tmp_path):
        snap = self._saved(dataset, tmp_path)
        loaded = load_engine(snap)
        assert getattr(loaded, "_mmap_guard", None) is None
        loaded.close()  # still closeable without a guard
        assert loaded.closed

    def test_sharded_close_releases_maps(self, dataset, tmp_path):
        sharded = ShardedIndex(
            dataset, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        )
        save_engine(sharded, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap", mmap=True)
        guard = loaded._mmap_guard
        assert guard.num_maps > 0
        loaded.close()
        assert guard.closed and guard.leaked == 0


class TestReadWalTail:
    def test_tail_after_lsn(self, tmp_path):
        from repro.core.persistence import read_wal_tail

        wal = WriteAheadLog(tmp_path / "wal.log")
        point = np.asarray([[1.0, 2.0, 3.0, 4.0]])
        wal.append(OP_INSERT, [7], point)
        wal.append(OP_DELETE, [7])
        wal.append(OP_BULK_INSERT, [8, 9], np.vstack([point, point * 2]))
        wal.close()
        records = list(read_wal_tail(tmp_path / "wal.log", after_lsn=1))
        assert [(lsn, op, list(ids)) for lsn, op, ids, _m in records] == [
            (2, OP_DELETE, [7]),
            (3, OP_BULK_INSERT, [8, 9]),
        ]
        assert records[1][3].shape == (2, 4)

    def test_reader_does_not_mutate_the_log(self, tmp_path):
        """Unlike opening a WriteAheadLog (which truncates a torn tail), the
        tail reader leaves the file bytes untouched — vital for workers that
        replay the primary's live log."""
        from repro.core.persistence import read_wal_tail

        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(OP_INSERT, [1], np.asarray([[1.0, 2.0, 3.0, 4.0]]))
        wal.close()
        blob = (tmp_path / "wal.log").read_bytes()
        # A torn half-written record at the end: the reader stops cleanly.
        (tmp_path / "wal.log").write_bytes(blob + b"\x01\x02\x03")
        records = list(read_wal_tail(tmp_path / "wal.log", after_lsn=0))
        assert [lsn for lsn, *_rest in records] == [1]
        assert (tmp_path / "wal.log").read_bytes() == blob + b"\x01\x02\x03"
