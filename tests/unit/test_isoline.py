"""Unit tests for isoline envelopes (repro.core.isoline)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import Angle
from repro.core.isoline import (
    Envelope,
    EnvelopeSide,
    build_envelope,
    peel_envelope_layers,
    tent_height,
    vee_height,
)


def brute_force_owner(x, y, angle, axis, lower=True):
    """Ground truth: who provides the best projection at a given axis position."""
    heights = [
        tent_height(angle, px, py, axis) if lower else vee_height(angle, px, py, axis)
        for px, py in zip(x, y)
    ]
    if lower:
        best = max(range(len(heights)), key=lambda i: heights[i])
    else:
        best = min(range(len(heights)), key=lambda i: heights[i])
    return heights[best]


class TestEnvelopeStructure:
    def test_empty_envelope(self):
        envelope = build_envelope([], [], Angle.from_weights(1, 1))
        assert envelope.is_empty
        assert envelope.owner_at(0.0) is None
        assert envelope.regions() == []

    def test_single_point_owns_everything(self):
        envelope = build_envelope([0.5], [0.5], Angle.from_weights(1, 1))
        assert len(envelope) == 1
        for axis in (-100.0, 0.0, 0.5, 100.0):
            assert envelope.owner_at(axis) == 0

    def test_breakpoints_are_sorted(self, rng):
        x = rng.random(200)
        y = rng.random(200)
        envelope = build_envelope(x, y, Angle.from_weights(1.0, 0.7))
        breaks = envelope.breakpoints
        assert breaks == sorted(breaks)

    def test_regions_tile_the_axis(self, rng):
        x = rng.random(100)
        y = rng.random(100)
        envelope = build_envelope(x, y, Angle.from_weights(1.0, 1.0))
        regions = envelope.regions()
        assert regions[0].left == -math.inf
        assert regions[-1].right == math.inf
        for left, right in zip(regions, regions[1:]):
            assert left.right == right.left

    def test_paper_figure3_example(self):
        """Figure 3 of the paper: p2, p1, p3 own the lower-projection regions."""
        # Reconstruct a configuration matching Figure 3's qualitative layout:
        # p2 leftish and high, p1 middle and highest, p3 right, p4/p5 dominated.
        x = [3.0, 1.0, 5.0, 2.0, 4.0]
        y = [3.0, 2.5, 2.0, 1.0, 0.5]
        envelope = build_envelope(x, y, Angle.from_weights(1, 1))
        assert envelope.owners == [1, 0, 2]  # p2, p1, p3 in paper numbering
        # p4 (index 3) and p5 (index 4) never provide the highest lower projection.
        assert 3 not in envelope.owners
        assert 4 not in envelope.owners

    def test_duplicate_points_keep_single_owner(self):
        x = [1.0, 1.0, 1.0]
        y = [2.0, 2.0, 2.0]
        envelope = build_envelope(x, y, Angle.from_weights(1, 1))
        assert len(envelope) == 1

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            build_envelope([1.0, 2.0], [1.0], Angle.from_weights(1, 1))

    def test_row_ids_are_respected(self):
        envelope = build_envelope([0.0, 10.0], [5.0, 5.0], Angle.from_weights(1, 1),
                                  row_ids=[42, 99])
        assert set(envelope.owners) <= {42, 99}

    def test_envelope_memory_accounting(self, rng):
        envelope = build_envelope(rng.random(50), rng.random(50), Angle.from_weights(1, 1))
        assert envelope.memory_bytes() == 8 * len(envelope.breakpoints) + 8 * len(envelope.owners)


class TestEnvelopeCorrectness:
    @pytest.mark.parametrize("degrees", [0.0, 20.0, 45.0, 70.0, 90.0])
    @pytest.mark.parametrize("side", [EnvelopeSide.LOWER_PROJECTIONS, EnvelopeSide.UPPER_PROJECTIONS])
    def test_owner_matches_brute_force(self, degrees, side, rng):
        angle = Angle.from_degrees(degrees)
        x = rng.random(150)
        y = rng.random(150)
        envelope = build_envelope(x, y, angle, side=side)
        lower = side == EnvelopeSide.LOWER_PROJECTIONS
        for axis in rng.uniform(-0.5, 1.5, size=40):
            owner = envelope.owner_at(axis)
            owner_height = (
                tent_height(angle, x[owner], y[owner], axis)
                if lower
                else vee_height(angle, x[owner], y[owner], axis)
            )
            best_height = brute_force_owner(x, y, angle, axis, lower=lower)
            assert owner_height == pytest.approx(best_height, abs=1e-9)

    def test_flat_angle_single_region(self, rng):
        x = rng.random(50)
        y = rng.random(50)
        envelope = build_envelope(x, y, Angle.from_degrees(0.0))
        assert len(envelope) == 1
        assert envelope.owner_at(0.3) == int(np.argmax(y))


class TestEnvelopePeeling:
    def test_layers_are_disjoint(self, rng):
        x = rng.random(80)
        y = rng.random(80)
        layers = peel_envelope_layers(x, y, Angle.from_weights(1, 1), layers=4)
        seen = set()
        for layer in layers:
            owners = set(layer.owners)
            assert not owners & seen
            seen |= owners

    def test_peeling_stops_when_points_run_out(self):
        layers = peel_envelope_layers([0.0, 1.0], [0.0, 1.0], Angle.from_weights(1, 1), layers=10)
        assert 1 <= len(layers) <= 2
        total_owners = sum(len(layer) for layer in layers)
        assert total_owners == 2

    def test_rejects_non_positive_layer_count(self):
        with pytest.raises(ValueError):
            peel_envelope_layers([0.0], [0.0], Angle.from_weights(1, 1), layers=0)

    def test_first_layer_equals_plain_envelope(self, rng):
        x = rng.random(60)
        y = rng.random(60)
        angle = Angle.from_weights(1.0, 0.5)
        layers = peel_envelope_layers(x, y, angle, layers=3)
        plain = build_envelope(x, y, angle)
        assert layers[0].owners == plain.owners
        assert layers[0].breakpoints == pytest.approx(plain.breakpoints)


class TestEnvelopeValidation:
    def test_breakpoint_count_must_match_owner_count(self):
        with pytest.raises(ValueError):
            Envelope(side=EnvelopeSide.LOWER_PROJECTIONS, owners=[1, 2], breakpoints=[])
