"""Unit tests for the runtime-k 2D index (repro.core.topk)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.angles import AngleGrid
from repro.core.query import SDQuery
from repro.core.topk import TopKIndex
from tests.conftest import assert_same_scores, oracle_topk


def make_query(qx, qy, k=5, alpha=1.0, beta=1.0):
    return SDQuery.simple([qx, qy], repulsive=[1], attractive=[0], k=k, alpha=alpha, beta=beta)


@pytest.fixture
def index_and_data(small_2d_dataset):
    index = TopKIndex(
        small_2d_dataset[:, 0],
        small_2d_dataset[:, 1],
        angle_grid=AngleGrid.default(),
        branching=4,
        leaf_capacity=8,
    )
    return index, small_2d_dataset


class TestQueries:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_matches_oracle_unit_weights(self, index_and_data, rng, k):
        index, data = index_and_data
        for _ in range(10):
            qx, qy = rng.random(2)
            result = index.query(qx, qy, k=k)
            assert_same_scores(result, oracle_topk(data, make_query(qx, qy, k=k)))

    @pytest.mark.parametrize("alpha,beta", [(1.0, 1.0), (0.2, 1.7), (3.0, 0.1), (1.0, 0.0001)])
    def test_matches_oracle_arbitrary_weights(self, index_and_data, rng, alpha, beta):
        index, data = index_and_data
        for _ in range(10):
            qx, qy = rng.random(2)
            result = index.query(qx, qy, k=7, alpha=alpha, beta=beta)
            assert_same_scores(result, oracle_topk(data, make_query(qx, qy, 7, alpha, beta)))

    def test_claim6_strategy_matches_streams(self, index_and_data, rng):
        index, data = index_and_data
        for _ in range(15):
            qx, qy = rng.random(2)
            alpha, beta = rng.uniform(0.05, 2.0, size=2)
            streams = index.query(qx, qy, k=6, alpha=alpha, beta=beta, strategy="streams")
            claim6 = index.query(qx, qy, k=6, alpha=alpha, beta=beta, strategy="claim6")
            assert_same_scores(claim6, streams)
            assert_same_scores(streams, oracle_topk(data, make_query(qx, qy, 6, alpha, beta)))

    def test_indexed_angle_queries(self, index_and_data, rng):
        """Queries whose angle coincides with an indexed angle (exact bounds path)."""
        index, data = index_and_data
        for degrees in (0.0, 22.5, 45.0, 67.5, 90.0):
            angle = np.radians(degrees)
            alpha, beta = np.cos(angle), np.sin(angle)
            alpha = max(alpha, 1e-9)
            beta = max(beta, 1e-9)
            qx, qy = rng.random(2)
            result = index.query(qx, qy, k=4, alpha=alpha, beta=beta)
            assert_same_scores(result, oracle_topk(data, make_query(qx, qy, 4, alpha, beta)))

    def test_k_larger_than_dataset(self, rng):
        data = rng.random((20, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        result = index.query(0.5, 0.5, k=100)
        assert len(result) == 20

    def test_k_must_be_positive(self, index_and_data):
        index, _ = index_and_data
        with pytest.raises(ValueError):
            index.query(0.5, 0.5, k=0)

    def test_unknown_strategy_rejected(self, index_and_data):
        index, _ = index_and_data
        with pytest.raises(ValueError):
            index.query(0.5, 0.5, k=1, strategy="magic")

    def test_iter_best_is_monotone(self, index_and_data, rng):
        index, _ = index_and_data
        qx, qy = rng.random(2)
        scores = [score for _, score in zip(range(60), _drop_rows(index.iter_best(qx, qy, 1.0, 0.7)))]
        assert scores == sorted(scores, reverse=True)

    def test_iter_best_enumerates_every_point(self, rng):
        data = rng.random((100, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        rows = [row for row, _ in index.iter_best(0.5, 0.5)]
        assert sorted(rows) == list(range(100))

    def test_results_carry_points_and_ids(self, index_and_data):
        index, data = index_and_data
        result = index.query(0.5, 0.5, k=3)
        for match in result:
            assert match.point == pytest.approx(tuple(data[match.row_id]))


def _drop_rows(iterator):
    for _, score in iterator:
        yield score


class TestUpdates:
    def test_insert_changes_answers(self, rng):
        data = rng.random((100, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        # A point far above everything is the unique best for a pure-repulsive query.
        new_row = index.insert(0.5, 50.0)
        result = index.query(0.5, 0.0, k=1, alpha=1.0, beta=1e-9)
        assert result.row_ids == [new_row]

    def test_delete_changes_answers(self, rng):
        data = rng.random((100, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        best = index.query(0.5, 0.5, k=1).row_ids[0]
        index.delete(best)
        assert best not in index.query(0.5, 0.5, k=5).row_ids

    def test_update_stream_against_oracle(self, rng):
        data = rng.random((150, 2))
        index = TopKIndex(data[:, 0], data[:, 1], leaf_capacity=8, branching=4)
        live = {i: data[i] for i in range(len(data))}
        next_row = len(data)
        for step in range(200):
            if rng.random() < 0.55 or len(live) < 20:
                point = rng.random(2)
                index.insert(point[0], point[1], row_id=next_row)
                live[next_row] = point
                next_row += 1
            else:
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]
        rows = list(live)
        matrix = np.array([live[r] for r in rows])
        for _ in range(10):
            qx, qy = rng.random(2)
            alpha, beta = rng.uniform(0.1, 2.0, size=2)
            expected = oracle_topk(matrix, make_query(qx, qy, 5, alpha, beta))
            assert_same_scores(index.query(qx, qy, 5, alpha, beta), expected)

    def test_rebuild_preserves_answers(self, rng):
        data = rng.random((200, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        before = index.query(0.3, 0.7, k=10)
        index.rebuild()
        after = index.query(0.3, 0.7, k=10)
        assert_same_scores(before, after)


class TestStats:
    def test_stats_name_and_counts(self, index_and_data):
        index, data = index_and_data
        stats = index.stats()
        assert stats.name == "sd-topk"
        assert stats.num_points == len(data)
        assert stats.num_angles == 5

    def test_len(self, index_and_data):
        index, data = index_and_data
        assert len(index) == len(data)
