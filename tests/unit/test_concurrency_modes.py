"""Unit tests for the concurrency knob and the snapshot view surfaces.

The multi-threaded behavior is exercised by the stress suite; these tests pin
down the single-threaded contracts: the ``"unsafe"`` mode stays exact (it is
the legacy in-place patching), invalid modes are rejected everywhere, and the
snapshot views expose their lifecycle/metadata correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.aggregate import SubproblemAggregator
from repro.core.batch import QuerySession
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)


def _oracle(store, points, k):
    rows = sorted(store)
    return SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    ).batch_query(points, k=k)


class TestUnsafeMode:
    """``concurrency="unsafe"`` keeps the legacy in-place patch semantics."""

    @pytest.mark.parametrize("concurrency", ["snapshot", "unsafe"])
    def test_flat_updates_stay_exact(self, concurrency):
        rng = np.random.default_rng(31)
        data = rng.random((120, 4))
        index = SDIndex.build(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, concurrency=concurrency
        )
        assert index.concurrency == concurrency
        store = {row: data[row] for row in range(120)}
        points = rng.random((3, 4))
        index.batch_query(points, k=4)  # build the session
        for step in range(40):
            if step % 3 == 0 and len(store) > 10:
                victim = sorted(store)[step % len(store)]
                index.delete(victim)
                del store[victim]
            else:
                point = rng.random(4)
                store[index.insert(point)] = point
        batch = index.batch_query(points, k=4)
        expected = _oracle(store, points, 4)
        for j in range(3):
            assert batch[j].row_ids == expected[j].row_ids
            assert batch[j].scores == expected[j].scores
        session = index.query_session()
        if concurrency == "unsafe":
            # In-place patching: epochs are published only by (re)builds,
            # never per update.
            assert session.epochs.published == 1 + session.reflattens
        else:
            assert session.epochs.published > 1 + session.reflattens

    def test_unsafe_sharded_updates_stay_exact(self):
        rng = np.random.default_rng(32)
        data = rng.random((150, 4))
        engine = ShardedIndex(
            data,
            repulsive=REPULSIVE,
            attractive=ATTRACTIVE,
            num_shards=3,
            concurrency="unsafe",
        )
        try:
            store = {row: data[row] for row in range(150)}
            for row in range(0, 30):
                engine.delete(row)
                del store[row]
            fresh = rng.random((20, 4))
            for row, point in zip(engine.bulk_insert(fresh), fresh):
                store[row] = point
            points = rng.random((3, 4))
            batch = engine.batch_query(points, k=5)
            expected = _oracle(store, points, 5)
            for j in range(3):
                assert batch[j].row_ids == expected[j].row_ids
                assert batch[j].scores == expected[j].scores
        finally:
            engine.close()

    def test_unsafe_topk_patches_in_place(self):
        rng = np.random.default_rng(33)
        data = rng.random((80, 2))
        index = TopKIndex(data[:, 0], data[:, 1], concurrency="unsafe")
        index.query(0.5, 0.5, k=3)
        flat_before = index.flat_session()
        index.insert(0.1, 0.9)
        index.delete(0)
        assert index.flat_session() is flat_before  # same object, patched
        streams = index.query(0.4, 0.6, k=4, strategy="streams")
        flat = index.query(0.4, 0.6, k=4)
        assert flat.row_ids == streams.row_ids
        assert flat.scores == streams.scores

    def test_invalid_mode_rejected_everywhere(self):
        rng = np.random.default_rng(34)
        data = rng.random((10, 4))
        with pytest.raises(ValueError, match="concurrency"):
            SDIndex.build(
                data, repulsive=REPULSIVE, attractive=ATTRACTIVE, concurrency="nope"
            )
        with pytest.raises(ValueError, match="concurrency"):
            SubproblemAggregator(
                data, repulsive=REPULSIVE, attractive=ATTRACTIVE, concurrency="nope"
            )
        with pytest.raises(ValueError, match="concurrency"):
            ShardedIndex(
                data,
                repulsive=REPULSIVE,
                attractive=ATTRACTIVE,
                num_shards=2,
                concurrency="nope",
            )
        with pytest.raises(ValueError, match="concurrency"):
            TopKIndex(data[:, 0], data[:, 1], concurrency="nope")
        aggregator = SubproblemAggregator(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE
        )
        with pytest.raises(ValueError, match="concurrency"):
            QuerySession(aggregator, concurrency="nope")


class TestSnapshotSurfaces:
    def test_session_snapshot_lifecycle_and_guards(self):
        rng = np.random.default_rng(35)
        data = rng.random((60, 4))
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        session = index.query_session()
        snap = session.snapshot()
        assert not snap.closed
        assert snap.version == session.epochs.version
        assert len(snap) == 60
        assert snap.num_live == 60
        result = snap.run_one(
            __import__("repro.core.query", fromlist=["SDQuery"]).SDQuery.simple(
                data[0], REPULSIVE, ATTRACTIVE, k=3
            )
        )
        assert len(result) == 3
        assert snap.data_magnitude() > 0
        bounds = snap.upper_bounds(data[:2], k=1)
        assert bounds.shape == (2,)
        samples = snap.sample_scores(data[:2], pool=16, k=1)
        assert samples.shape[0] == 2
        snap.close()
        snap.close()  # idempotent
        assert snap.closed
        with pytest.raises(RuntimeError, match="closed"):
            snap.run(data[:1], k=1)

    def test_sdindex_snapshot_query_shapes(self):
        rng = np.random.default_rng(36)
        data = rng.random((50, 4))
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        with index.snapshot() as snap:
            by_point = snap.query(data[3], k=2)
            assert len(by_point) == 2
            assert len(snap) == 50
            with pytest.raises(ValueError, match="k is required"):
                snap.query(data[3])
            rows, matrix = snap.frozen()
            assert list(rows) == list(range(50))
            assert matrix.shape == (50, 4)
        assert snap.version == index.query_session().epochs.version

    def test_sharded_snapshot_metadata_and_guards(self):
        rng = np.random.default_rng(37)
        data = rng.random((90, 4))
        engine = ShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=3
        )
        try:
            snap = engine.snapshot()
            assert snap.topology_version == engine.topology_version
            assert len(snap.versions) == 3
            assert len(snap) == 90
            assert list(snap.live_row_ids()) == list(range(90))
            single = snap.query(data[5], k=2)
            assert len(single) == 2
            snap.close()
            snap.close()
            with pytest.raises(RuntimeError, match="closed"):
                snap.batch_query(data[:2], k=1)
        finally:
            engine.close()

    def test_topk_snapshot_guards_and_query(self):
        rng = np.random.default_rng(38)
        data = rng.random((70, 2))
        index = TopKIndex(data[:, 0], data[:, 1])
        with index.snapshot() as snap:
            assert len(snap) == 70
            assert snap.version == index.flat_epochs.version
            one = snap.query(0.5, 0.5, k=4, alpha=0.8, beta=1.2)
            direct = index.query(0.5, 0.5, k=4, alpha=0.8, beta=1.2)
            assert one.row_ids == direct.row_ids
            assert one.scores == direct.scores
        snap.close()
        with pytest.raises(RuntimeError, match="closed"):
            snap.batch_query([0.5], [0.5], 1)

    @pytest.mark.parametrize("k", [1, 3])
    def test_top1_snapshot_matches_live_and_is_cached(self, k):
        rng = np.random.default_rng(39)
        data = rng.random((60, 2))
        index = Top1Index(data[:, 0], data[:, 1], k=k)
        first = index.snapshot()
        second = index.snapshot()
        # No mutation in between: the frozen view is built once and shared.
        assert first.version == second.version
        assert len(first) == 60
        live = index.query(0.4, 0.6)
        pinned = first.query(0.4, 0.6)
        assert pinned.row_ids == live.row_ids
        assert pinned.scores == live.scores
        batch = first.batch_query([0.4, 0.2], [0.6, 0.8])
        for j, (qx, qy) in enumerate([(0.4, 0.6), (0.2, 0.8)]):
            assert batch[j].row_ids == index.query(qx, qy).row_ids
        version_before = index.version
        index.insert(0.5, 0.5)
        assert index.version > version_before
        third = index.snapshot()
        assert third.version > first.version
        first.close()
        second.close()
        second.close()
        third.close()
        report = index.view_epochs.leak_report()
        assert report["pinned_readers"] == 0
        assert report["live_epochs"] == 1

    def test_aggregator_version_and_lock_surface(self):
        rng = np.random.default_rng(40)
        aggregator = SubproblemAggregator(
            rng.random((20, 4)), repulsive=REPULSIVE, attractive=ATTRACTIVE
        )
        version = aggregator.version
        aggregator.insert(rng.random(4))
        assert aggregator.version == version + 1
        with aggregator.write_lock:
            aggregator.delete(0)
        assert aggregator.version == version + 2
        with aggregator.snapshot() as snap:
            assert snap.num_live == 20
