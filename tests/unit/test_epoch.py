"""Unit tests for the epoch snapshot subsystem (``repro.core.epoch``)."""

from __future__ import annotations

import threading

import pytest

from repro.core.epoch import EpochManager


class TestLifecycle:
    def test_pin_before_first_publish_raises(self):
        manager = EpochManager()
        with pytest.raises(RuntimeError):
            manager.pin()
        with pytest.raises(RuntimeError):
            manager.current

    def test_publish_pin_release_roundtrip(self):
        manager = EpochManager()
        epoch = manager.publish({"rows": 3})
        assert epoch.version == 1
        assert manager.current is epoch
        pinned = manager.pin()
        assert pinned is epoch
        assert pinned.pins == 1
        assert pinned.state == {"rows": 3}
        pinned.release()
        assert pinned.pins == 0
        # Current epochs are never reclaimed, even unpinned.
        assert not pinned.reclaimed
        assert manager.live_epochs == 1

    def test_publish_retires_and_reclaims_unpinned_predecessor(self):
        manager = EpochManager()
        first = manager.publish("a")
        second = manager.publish("b")
        assert first.retired and first.reclaimed and first.state is None
        assert not second.retired
        assert manager.version == 2
        assert manager.reclaimed == 1
        assert manager.live_epochs == 1

    def test_pinned_predecessor_survives_until_released(self):
        manager = EpochManager()
        first = manager.publish("a")
        pin = manager.pin()
        manager.publish("b")
        assert first.retired and not first.reclaimed
        assert pin.state == "a"
        assert manager.live_epochs == 2
        assert manager.pinned_readers == 1
        pin.release()
        assert first.reclaimed and first.state is None
        assert manager.live_epochs == 1
        assert manager.pinned_readers == 0

    def test_multiple_pins_drain_independently(self):
        manager = EpochManager()
        manager.publish("a")
        pins = [manager.pin() for _ in range(3)]
        manager.publish("b")
        for i, pin in enumerate(pins):
            assert not pin.reclaimed
            pin.release()
        assert pins[0].reclaimed
        assert manager.leak_report()["pinned_readers"] == 0

    def test_double_release_raises(self):
        manager = EpochManager()
        manager.publish("a")
        pin = manager.pin()
        pin.release()
        with pytest.raises(RuntimeError):
            pin.release()

    def test_context_manager_releases(self):
        manager = EpochManager()
        manager.publish("a")
        with manager.pin() as epoch:
            assert epoch.pins == 1
        assert epoch.pins == 0

    def test_reclaim_callback_fires_once_per_epoch(self):
        reclaimed = []
        manager = EpochManager(on_reclaim=reclaimed.append)
        first = manager.publish("a")
        pin = manager.pin()
        manager.publish("b")
        assert reclaimed == []
        pin.release()
        assert reclaimed == [first]
        manager.publish("c")
        assert len(reclaimed) == 2

    def test_leak_report_counts(self):
        manager = EpochManager()
        manager.publish("a")
        pin = manager.pin()
        manager.publish("b")
        manager.publish("c")
        report = manager.leak_report()
        assert report["published"] == 3
        assert report["reclaimed"] == 1  # "b" drained immediately, "a" is pinned
        assert report["live_epochs"] == 2
        assert report["pinned_readers"] == 1
        pin.release()
        report = manager.leak_report()
        assert report["reclaimed"] == 2
        assert report["live_epochs"] == 1
        assert report["pinned_readers"] == 0


class TestCurrentState:
    def test_current_state_outlives_a_racing_publish(self):
        """Regression: an unpinned reader must get the state object, not the
        epoch — a publish reclaims the epoch (nulling its state pointer) but
        never touches the published state itself."""
        manager = EpochManager()
        manager.publish({"value": 1})
        # The unsafe pattern: holding the epoch across a publish loses the state.
        epoch = manager.current
        state = manager.current_state()
        manager.publish({"value": 2})
        assert epoch.state is None  # reclaimed out from under the holder
        assert state == {"value": 1}  # the atomic read keeps the object

    def test_current_state_before_publish_raises(self):
        with pytest.raises(RuntimeError):
            EpochManager().current_state()


class TestThreaded:
    def test_concurrent_pin_publish_drains_clean(self):
        manager = EpochManager()
        manager.publish(0)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    with manager.pin() as epoch:
                        # The pinned state must never be a reclaimed (None)
                        # payload, no matter how publishes interleave.
                        assert epoch.state is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for version in range(1, 300):
            manager.publish(version)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert not errors
        report = manager.leak_report()
        assert report["pinned_readers"] == 0
        assert report["live_epochs"] == 1
        assert report["reclaimed"] == report["published"] - 1
