"""Unit tests for the in-memory R*-tree substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.substrates.mbr import MBR
from repro.substrates.rstartree import RStarTree, default_node_capacity


def check_invariants(tree: RStarTree) -> None:
    """Structural invariants: MBR containment and entry/child counts."""
    def recurse(node):
        members = node.members()
        if node.mbr is None:
            assert not members
            return 0
        assert len(members) <= tree.node_capacity
        count = 0
        if node.is_leaf:
            for entry in node.entries:
                assert node.mbr.contains_point(entry.point)
            count = len(node.entries)
        else:
            for child in node.children:
                assert child.mbr is not None
                assert node.mbr.contains_point(child.mbr.lower)
                assert node.mbr.contains_point(child.mbr.upper)
                assert child.level == node.level - 1
                count += recurse(child)
        return count

    total = recurse(tree._root)
    assert total == len(tree)


class TestNodeCapacity:
    def test_paper_capacities(self):
        assert default_node_capacity(2) == 28
        assert default_node_capacity(4) == 16
        assert default_node_capacity(6) == 12
        assert default_node_capacity(8) == 9

    def test_interpolation_and_clamping(self):
        assert default_node_capacity(3) in range(16, 29)
        assert default_node_capacity(1) == 28
        assert default_node_capacity(20) == 9


class TestBulkLoad:
    def test_bulk_load_contains_every_point(self, rng):
        points = rng.random((500, 3))
        tree = RStarTree.bulk_load(points)
        assert len(tree) == 500
        stored = dict(tree.iter_entries())
        assert len(stored) == 500
        for row in (0, 100, 499):
            assert np.allclose(stored[row], points[row])
        check_invariants(tree)

    def test_bulk_load_empty(self):
        tree = RStarTree.bulk_load(np.zeros((0, 2)))
        assert len(tree) == 0

    def test_bulk_load_custom_row_ids(self, rng):
        points = rng.random((50, 2))
        rows = list(range(1000, 1050))
        tree = RStarTree.bulk_load(points, row_ids=rows)
        assert set(dict(tree.iter_entries())) == set(rows)

    def test_bulk_load_rejects_misaligned_rows(self, rng):
        with pytest.raises(ValueError):
            RStarTree.bulk_load(rng.random((10, 2)), row_ids=[1, 2, 3])


class TestInsertDelete:
    def test_incremental_inserts_maintain_invariants(self, rng):
        tree = RStarTree(num_dims=2, node_capacity=8)
        points = rng.random((300, 2))
        for i, point in enumerate(points):
            tree.insert(point, row_id=i)
        assert len(tree) == 300
        check_invariants(tree)

    def test_insert_rejects_wrong_dimensionality(self):
        tree = RStarTree(num_dims=2)
        with pytest.raises(ValueError):
            tree.insert([1.0, 2.0, 3.0], row_id=0)

    def test_delete_removes_point(self, rng):
        points = rng.random((200, 2))
        tree = RStarTree.bulk_load(points, node_capacity=8)
        assert tree.delete(17, points[17])
        assert len(tree) == 199
        assert 17 not in dict(tree.iter_entries())
        check_invariants(tree)

    def test_delete_missing_point_returns_false(self, rng):
        points = rng.random((20, 2))
        tree = RStarTree.bulk_load(points)
        assert not tree.delete(999, [0.5, 0.5])

    def test_many_deletes_keep_remaining_points(self, rng):
        points = rng.random((150, 2))
        tree = RStarTree.bulk_load(points, node_capacity=8)
        for row in range(0, 100):
            assert tree.delete(row, points[row])
        remaining = set(dict(tree.iter_entries()))
        assert remaining == set(range(100, 150))
        check_invariants(tree)


class TestQueries:
    def test_range_query_matches_linear_scan(self, rng):
        points = rng.random((400, 2))
        tree = RStarTree.bulk_load(points, node_capacity=10)
        box = MBR([0.2, 0.3], [0.6, 0.9])
        found = {row for row, _ in tree.range_query(box)}
        expected = {
            i for i, p in enumerate(points)
            if 0.2 <= p[0] <= 0.6 and 0.3 <= p[1] <= 0.9
        }
        assert found == expected

    def test_best_first_orders_by_score(self, rng):
        points = rng.random((200, 2))
        tree = RStarTree.bulk_load(points, node_capacity=8)
        query = np.array([0.5, 0.5])

        def point_score(p):
            return -float(np.abs(p - query).sum())

        def node_bound(box):
            return -sum(box.min_abs_difference(d, query[d]) for d in range(2))

        scores = [score for _, _, score, _ in tree.best_first(node_bound, point_score)]
        assert len(scores) == 200
        assert scores == sorted(scores, reverse=True)

    def test_stats(self, rng):
        tree = RStarTree.bulk_load(rng.random((300, 4)))
        stats = tree.stats()
        assert stats.num_points == 300
        assert stats.num_nodes >= 1
        assert stats.height >= 1
        assert stats.memory_bytes > 0
