"""Unit tests for workload generation, the algorithm registry and the timing runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.workloads.registry import ALGORITHM_BUILDERS, DEFAULT_METHODS, build_algorithm
from repro.workloads.reporting import format_series_table, format_table
from repro.workloads.runner import ExperimentResult, MeasuredSeries, time_queries
from repro.workloads.registry import build_workload
from repro.workloads.workload import make_concurrent_workload, make_workload


class TestWorkloads:
    def test_workload_size_and_roles(self):
        workload = make_workload([0, 1], [2], num_queries=7, k=3)
        assert len(workload) == 7
        for query in workload:
            assert query.k == 3
            assert query.repulsive == (0, 1)
            assert query.attractive == (2,)
            assert query.num_dims == 3

    def test_workload_is_deterministic(self):
        a = make_workload([0], [1], num_queries=5, seed=3)
        b = make_workload([0], [1], num_queries=5, seed=3)
        assert [q.point for q in a] == [q.point for q in b]

    def test_random_weights_within_range(self):
        workload = make_workload([0], [1], num_queries=20, weight_range=(0.2, 0.9))
        for query in workload:
            assert 0.2 <= query.alpha[0] <= 0.9
            assert 0.2 <= query.beta[0] <= 0.9

    def test_unit_weights_option(self):
        workload = make_workload([0], [1], num_queries=3, random_weights=False)
        assert all(q.alpha == (1.0,) and q.beta == (1.0,) for q in workload)

    def test_with_k(self):
        workload = make_workload([0], [1], num_queries=3, k=2).with_k(9)
        assert all(q.k == 9 for q in workload)

    def test_explicit_num_dims(self):
        workload = make_workload([0], [1], num_queries=2, num_dims=6)
        assert all(q.num_dims == 6 for q in workload)


class TestConcurrentWorkload:
    def test_script_is_deterministic_and_mixes_ops(self):
        workload = make_concurrent_workload(
            (0, 1), (2, 3), num_queries=8, num_updates=60, seed=5
        )
        assert len(workload.reads) == 8
        assert workload.num_updates == 60
        first = workload.script(range(100))
        second = workload.script(range(100))
        assert [(op, row) for op, row, _ in first] == [
            (op, row) for op, row, _ in second
        ]
        ops = {op for op, _, _ in first}
        assert ops == {"insert", "delete"}
        # Inserts allocate fresh ids above the initial population.
        inserted = [row for op, row, _ in first if op == "insert"]
        assert min(inserted) >= 100
        assert len(set(inserted)) == len(inserted)
        # Deletes only target rows that were live at that point.
        live = set(range(100))
        for op, row, point in first:
            if op == "insert":
                assert point is not None and len(point) == 4
                live.add(row)
            else:
                assert row in live
                live.discard(row)

    def test_registered_builder_uses_the_k_menu(self):
        workload = build_workload(
            "concurrent_serving", (0, 1), (2, 3), num_queries=40, seed=3
        )
        assert set(int(k) for k in workload.reads.ks) <= {1, 10}

    def test_script_respects_starting_population(self):
        workload = make_concurrent_workload(
            (0, 1), (2, 3), num_queries=4, num_updates=10, seed=9
        )
        ops = workload.script([7, 99, 4])
        inserted = [row for op, row, _ in ops if op == "insert"]
        assert min(inserted) >= 100


class TestRegistry:
    def test_default_methods_are_registered(self):
        for name in DEFAULT_METHODS + ("PE",):
            assert name in ALGORITHM_BUILDERS

    def test_build_each_algorithm(self, rng):
        data = rng.random((100, 4))
        for name in ALGORITHM_BUILDERS:
            algorithm = build_algorithm(name, data, [0, 1], [2, 3])
            workload = make_workload([0, 1], [2, 3], num_queries=2, k=3)
            for query in workload:
                assert len(algorithm.query(query)) == 3

    def test_unknown_algorithm_rejected(self, rng):
        with pytest.raises(ValueError):
            build_algorithm("Oracle", rng.random((10, 2)), [0], [1])

    def test_sd_index_options_forwarded(self, rng):
        data = rng.random((100, 4))
        index = build_algorithm("SD-Index", data, [0, 1], [2, 3], angles=[0, 45, 90], branching=4)
        assert index.stats().num_angles == 3


class TestRunnerAndReporting:
    def test_time_queries_summary(self, rng):
        data = rng.random((200, 2))
        scan = SequentialScan(data, [0], [1])
        workload = make_workload([0], [1], num_queries=4, k=2)
        summary = time_queries(scan, workload, repeat=2)
        assert summary.num_queries == 8
        assert summary.total_seconds >= 0
        assert summary.mean_candidates == 200
        assert summary.mean_milliseconds == pytest.approx(summary.mean_seconds * 1000)

    def test_collect_results(self, rng):
        data = rng.random((50, 2))
        scan = SequentialScan(data, [0], [1])
        workload = make_workload([0], [1], num_queries=3, k=2)
        summary = time_queries(scan, workload, collect_results=True)
        assert len(summary.results) == 3

    def test_experiment_result_series(self):
        result = ExperimentResult(name="demo", x_label="n", y_label="ms")
        result.series_for("A").add(1, 10.0)
        result.series_for("A").add(2, 20.0)
        result.series_for("B").add(1, 5.0)
        assert len(result.series) == 2
        assert result.series_for("A").y_values == [10.0, 20.0]
        as_dict = result.as_dict()
        assert as_dict["name"] == "demo"
        assert len(as_dict["series"]) == 2

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series_table_includes_every_method(self):
        result = ExperimentResult(name="demo", x_label="n", y_label="ms")
        result.series_for("A").add(1, 10.0)
        result.series_for("B").add(2, 5.0)
        text = format_series_table(result)
        assert "A" in text and "B" in text
        assert "-" in text  # missing measurements rendered as dashes


class TestDurableScripts:
    """checkpoint/restore of a concurrent_serving update script mid-way."""

    REPULSIVE = (0, 1)
    ATTRACTIVE = (2, 3)

    def _population(self, data, ops):
        population = {row: np.asarray(data[row]) for row in range(len(data))}
        for op, row_id, point in ops:
            if op == "insert":
                population[row_id] = np.asarray(point)
            else:
                del population[row_id]
        return population

    def test_resume_update_script_mid_way(self, tmp_path):
        from repro.core.persistence import DurableIndex, WAL_NAME
        from repro.core.sdindex import SDIndex
        from repro.workloads.runner import resume_update_script, run_update_script

        workload = make_concurrent_workload(
            self.REPULSIVE, self.ATTRACTIVE, num_queries=6, num_updates=40, seed=3
        )
        rng = np.random.default_rng(3)
        data = rng.random((80, 4))
        ops = workload.script(range(len(data)))

        index = SDIndex.build(
            data, repulsive=self.REPULSIVE, attractive=self.ATTRACTIVE
        )
        durable = DurableIndex.create(index, tmp_path / "dur")
        # Run the first 25 steps with a checkpoint every 10, then "crash" by
        # dropping the last journaled records (a torn shutdown).
        run_update_script(durable, ops[:25], checkpoint_every=10)
        durable.wal.sync()
        durable.close()
        wal = tmp_path / "dur" / WAL_NAME
        blob = wal.read_bytes()
        wal.write_bytes(blob[:-50])

        resumed, resumed_from = resume_update_script(
            tmp_path / "dur", ops, checkpoint_every=10
        )
        # The crash dropped at most one acknowledged-but-torn record past the
        # checkpoint at step 20; resume restarts within (20, 25].
        assert 20 < resumed_from <= 25
        # After the remaining steps the engine matches an uncrashed oracle.
        population = self._population(data, ops)
        rows = sorted(population)
        oracle = SequentialScan(
            np.asarray([population[row] for row in rows], dtype=float),
            self.REPULSIVE,
            self.ATTRACTIVE,
            row_ids=rows,
        )
        queries = rng.random((5, 4))
        expected = oracle.batch_query(queries, k=5)
        got = resumed.batch_query(queries, k=5)
        for a, b in zip(expected.results, got.results):
            assert [(m.row_id, m.score) for m in a.matches] == [
                (m.row_id, m.score) for m in b.matches
            ]
        resumed.close()

    def test_run_update_script_rejects_unknown_op(self, tmp_path):
        from repro.core.sdindex import SDIndex
        from repro.workloads.runner import run_update_script

        index = SDIndex.build(
            np.random.default_rng(0).random((10, 4)),
            repulsive=self.REPULSIVE,
            attractive=self.ATTRACTIVE,
        )
        with pytest.raises(ValueError, match="unknown script op"):
            run_update_script(index, [("upsert", 1, None)])


class TestTimingDiscipline:
    """Monotonic-clock tripwire for every timing site.

    ``time_queries`` and the benchmarks must time with ``time.perf_counter``
    — wall-clock (``time.time``) timing lets an NTP step mid-measurement
    produce negative or skewed latencies in the BENCH JSONs.  The audit is
    enforced as a source scan so a regression anywhere in the measurement
    code trips immediately.
    """

    def test_no_wall_clock_timing_in_measurement_code(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        offenders = []
        for base in ("src", "benchmarks", "examples"):
            for path in sorted((root / base).rglob("*.py")):
                source = path.read_text(encoding="utf-8")
                if "time.time()" in source or "datetime.now(" in source:
                    offenders.append(str(path.relative_to(root)))
        assert offenders == [], (
            f"wall-clock timing in measurement code (use time.perf_counter): "
            f"{offenders}"
        )
