"""Unit tests for the fault plane, deadlines, breakers and retry policy.

The registry tripwires at the bottom are the contract that keeps the chaos
plane honest: every declared fault point must be exercised by at least one
chaos/crash test, and every ``fire(...)`` site in the source tree must be
declared — injection surfaces are not allowed to rot silently in either
direction.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.core.deadline import NO_TIMEOUT, Deadline, DeadlineExceeded, _NoTimeout
from repro.faults import FaultPlane, FaultRule, InjectedFault
from repro.serving.breaker import (
    BreakerOpen,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
)

REPO = Path(__file__).resolve().parents[2]


class FakeClock:
    """A hand-stepped monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


# ---------------------------------------------------------------- fault rules
class TestFaultRule:
    def test_validates_action_rate_delay_times(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule("p", action="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule("p", rate=1.5)
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultRule("p", delay_seconds=-1)
        with pytest.raises(ValueError, match="times"):
            FaultRule("p", times=0)

    def test_matching_exact_glob_and_key(self):
        rule = FaultRule("wal.append.*", key=None)
        assert rule.matches("wal.append.written", None)
        assert rule.matches("wal.append.synced", 3)
        assert not rule.matches("wal.rotate.written", None)
        keyed = FaultRule("shard.probe", key=1)
        assert keyed.matches("shard.probe", 1)
        assert not keyed.matches("shard.probe", 2)
        assert not keyed.matches("shard.probe", None)


class TestFaultPlane:
    def test_raise_action_carries_point_and_transience(self):
        plane = FaultPlane([FaultRule("x.y", transient=False)])
        with pytest.raises(InjectedFault) as info:
            plane.fire("x.y", key="k")
        assert info.value.point == "x.y"
        assert info.value.key == "k"
        assert not info.value.transient

    def test_same_seed_same_storm(self):
        def storm(seed):
            plane = FaultPlane([FaultRule("p", rate=0.5)], seed=seed)
            hits = []
            for _ in range(200):
                try:
                    plane.fire("p")
                    hits.append(0)
                except InjectedFault:
                    hits.append(1)
            return hits

        assert storm(7) == storm(7)
        assert storm(7) != storm(8)
        # The sequence is rate-representative, not degenerate.
        assert 40 < sum(storm(7)) < 160

    def test_times_caps_injections(self):
        plane = FaultPlane([FaultRule("p", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plane.fire("p")
        plane.fire("p")  # budget exhausted: no more injections
        assert plane.total_injections() == 2
        assert plane.stats()["hits"]["p"] == 3

    def test_delay_uses_injected_sleep(self):
        slept = []
        plane = FaultPlane(
            [FaultRule("p", action="delay", delay_seconds=0.25)],
            sleep=slept.append,
        )
        plane.fire("p")
        assert slept == [0.25]

    def test_hang_blocks_until_released(self):
        plane = FaultPlane([FaultRule("p", action="hang")])
        unblocked = threading.Event()

        def hit():
            plane.fire("p")
            unblocked.set()

        thread = threading.Thread(target=hit)
        thread.start()
        try:
            assert not unblocked.wait(timeout=0.1)
            plane.release_hangs()
            assert unblocked.wait(timeout=5)
        finally:
            plane.release_hangs()
            thread.join(timeout=5)

    def test_module_fire_is_noop_without_plane(self):
        assert faults.installed_fault_plane() is None
        faults.fire("not.even.declared")  # must not raise

    def test_scoped_install_restores_previous(self):
        plane = FaultPlane([FaultRule("p")])
        with faults.fault_plane(plane) as installed:
            assert installed is plane
            assert faults.installed_fault_plane() is plane
        assert faults.installed_fault_plane() is None

    def test_from_specs_round_trip(self):
        plane = FaultPlane.from_specs(
            [
                "shard.probe:raise:0.4:key=1",
                "coalescer.flush:delay:delay=0.002",
                "wal.append.synced:raise:0.25:transient=0:times=3",
            ],
            seed=3,
        )
        probe, flush, wal = plane.rules
        assert (probe.point, probe.action, probe.rate, probe.key) == (
            "shard.probe",
            "raise",
            0.4,
            1,
        )
        assert (flush.action, flush.delay_seconds, flush.rate) == ("delay", 0.002, 1.0)
        assert (wal.rate, wal.transient, wal.times) == (0.25, False, 3)

    def test_from_specs_rejects_garbage(self):
        with pytest.raises(ValueError, match="must look like"):
            FaultPlane.from_specs(["just-a-point"])
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlane.from_specs(["p:raise:0.5:wat=1"])

    def test_declare_is_idempotent(self):
        name = faults.declare_fault_point("test.unit.point", "first")
        faults.declare_fault_point("test.unit.point", "second wins nothing")
        assert name == "test.unit.point"
        assert faults.fault_points()["test.unit.point"] == "first"


# ------------------------------------------------------------------ deadlines
class TestDeadline:
    def test_remaining_expired_check(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired
        deadline.check()
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check()
        assert info.value.budget == pytest.approx(1.0)

    def test_after_none_is_unbounded(self):
        assert Deadline.after(None) is None
        assert Deadline.after(0.5).budget == pytest.approx(0.5)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline(-0.1)

    def test_no_timeout_is_a_singleton_sentinel(self):
        assert _NoTimeout() is NO_TIMEOUT
        assert repr(NO_TIMEOUT) == "NO_TIMEOUT"
        assert NO_TIMEOUT is not None


# ------------------------------------------------------------------- breakers
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # run broken: counter resets
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1

    def test_open_refuses_then_half_opens_on_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the one trial probe
        assert not breaker.allow()  # second trial refused
        assert breaker.refusals >= 2

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.retry_after() == pytest.approx(1.0)

    def test_record_cancel_returns_trial_slot_without_verdict(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_cancel()
        assert breaker.state == "half_open"  # no verdict recorded
        assert breaker.allow()  # the slot is available again

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=-1)
        with pytest.raises(ValueError, match="half_open_probes"):
            CircuitBreaker(half_open_probes=0)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_backoff=0.01, max_backoff=0.04, jitter=0.0
        )
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.04)
        assert policy.backoff(3) == pytest.approx(0.04)  # capped

    def test_jitter_is_seed_deterministic_and_bounded(self):
        a = [RetryPolicy(seed=5, jitter=0.5).backoff(2) for _ in range(1)]
        b = [RetryPolicy(seed=5, jitter=0.5).backoff(2) for _ in range(1)]
        assert a == b
        raw = RetryPolicy(jitter=0.0).backoff(2)
        for _ in range(50):
            jittered = RetryPolicy(seed=9, jitter=0.5)
            value = jittered.backoff(2)
            assert raw * 0.5 <= value <= raw

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestResiliencePolicy:
    def test_transience_classification(self):
        policy = ResiliencePolicy()
        assert policy.is_transient(InjectedFault("p", transient=True))
        assert not policy.is_transient(InjectedFault("p", transient=False))
        assert policy.is_transient(TimeoutError())
        assert policy.is_transient(ConnectionError())
        assert not policy.is_transient(ValueError())

    def test_build_breakers_honors_knobs(self):
        clock = FakeClock()
        policy = ResiliencePolicy(
            failure_threshold=2, reset_timeout=3.0, half_open_probes=2, clock=clock
        )
        breakers = policy.build_breakers(3)
        assert [b.name for b in breakers] == ["shard-0", "shard-1", "shard-2"]
        assert all(
            (b.failure_threshold, b.reset_timeout, b.half_open_probes) == (2, 3.0, 2)
            for b in breakers
        )
        assert ResiliencePolicy(breakers=False).build_breakers(3) is None

    def test_max_attempts_without_retry(self):
        assert ResiliencePolicy(retry=None).max_attempts == 1
        assert ResiliencePolicy(retry=RetryPolicy(max_attempts=4)).max_attempts == 4


# ----------------------------------------------------------------- tripwires
def _declared_points():
    """Import every instrumented module, then read the registry back."""
    import repro  # noqa: F401 - populates the registry via module imports
    import repro.core.persistence  # noqa: F401 - persistence points
    import repro.serving  # noqa: F401 - coalescer point

    return faults.fault_points()


def _source_files(root: Path):
    for base in ("src", "benchmarks", "examples"):
        yield from (REPO / base).rglob("*.py")


class TestFaultPointRegistry:
    #: fire()/_fault() call sites: the literal string argument.
    _FIRE = re.compile(r"""(?:faults\.fire|_fault)\(\s*['"]([a-z0-9_.]+)['"]""")

    def test_every_fired_point_is_declared(self):
        declared = set(_declared_points())
        undeclared = {}
        for path in _source_files(REPO):
            for point in self._FIRE.findall(path.read_text()):
                if point not in declared:
                    undeclared.setdefault(point, []).append(str(path))
        assert not undeclared, f"fired but never declared: {undeclared}"

    def test_every_declared_point_is_exercised_by_chaos_or_crash_tests(self):
        """Injection surfaces must not rot: each point appears in a fault test.

        A fault point nobody storms is dead weight — worse, its failure
        handling silently decays.  Every declared point must appear as a
        literal in the chaos suite or the crash-recovery suite.
        """
        declared = set(_declared_points()) - {"test.unit.point"}
        sources = ""
        for name in (
            "tests/integration/test_chaos.py",
            "tests/integration/test_crash_recovery.py",
        ):
            sources += (REPO / name).read_text()
        unexercised = sorted(
            point for point in declared if f'"{point}"' not in sources
        )
        assert not unexercised, (
            f"declared fault points never exercised by chaos/crash tests: "
            f"{unexercised}"
        )

    def test_registry_covers_the_serving_stack(self):
        declared = set(_declared_points())
        for expected in (
            "shard.probe",
            "batch.kernel",
            "epoch.pin",
            "epoch.publish",
            "coalescer.flush",
            "wal.append.written",
            "snapshot.manifest.before",
            "checkpoint.current.written",
        ):
            assert expected in declared
