"""Unit tests for minimum bounding rectangles (repro.substrates.mbr)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.substrates.mbr import MBR


class TestConstruction:
    def test_from_point_is_degenerate(self):
        box = MBR.from_point([1.0, 2.0])
        assert box.area() == 0.0
        assert box.contains_point([1.0, 2.0])

    def test_from_points(self):
        box = MBR.from_points(np.array([[0.0, 1.0], [2.0, -1.0]]))
        assert box.lower.tolist() == [0.0, -1.0]
        assert box.upper.tolist() == [2.0, 1.0]

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            MBR([1.0], [0.0])

    def test_rejects_empty_point_set(self):
        with pytest.raises(ValueError):
            MBR.from_points(np.zeros((0, 2)))

    def test_union_of_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.union_of([])


class TestGeometry:
    def test_area_and_margin(self):
        box = MBR([0.0, 0.0], [2.0, 3.0])
        assert box.area() == pytest.approx(6.0)
        assert box.margin() == pytest.approx(5.0)

    def test_union_and_enlargement(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([2.0, 2.0], [3.0, 3.0])
        union = a.union(b)
        assert union.lower.tolist() == [0.0, 0.0]
        assert union.upper.tolist() == [3.0, 3.0]
        assert a.enlargement(b) == pytest.approx(9.0 - 1.0)

    def test_intersects_and_overlap(self):
        a = MBR([0.0, 0.0], [2.0, 2.0])
        b = MBR([1.0, 1.0], [3.0, 3.0])
        c = MBR([5.0, 5.0], [6.0, 6.0])
        assert a.intersects(b)
        assert not a.intersects(c)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.overlap_area(c) == 0.0

    def test_touching_boxes_intersect_with_zero_overlap(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([1.0, 0.0], [2.0, 1.0])
        assert a.intersects(b)
        assert a.overlap_area(b) == 0.0

    def test_extend_point_and_extend(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        box.extend_point([2.0, -1.0])
        assert box.upper.tolist() == [2.0, 1.0]
        assert box.lower.tolist() == [0.0, -1.0]
        box.extend(MBR([-5.0, 0.0], [0.0, 5.0]))
        assert box.lower.tolist() == [-5.0, -1.0]
        assert box.upper.tolist() == [2.0, 5.0]

    def test_center_and_copy_and_eq(self):
        box = MBR([0.0, 0.0], [2.0, 4.0])
        assert box.center().tolist() == [1.0, 2.0]
        clone = box.copy()
        assert clone == box
        clone.extend_point([10.0, 10.0])
        assert clone != box


class TestQueryDistances:
    def test_min_abs_difference_inside_is_zero(self):
        box = MBR([0.0], [10.0])
        assert box.min_abs_difference(0, 5.0) == 0.0

    def test_min_abs_difference_outside(self):
        box = MBR([0.0], [10.0])
        assert box.min_abs_difference(0, -3.0) == pytest.approx(3.0)
        assert box.min_abs_difference(0, 12.0) == pytest.approx(2.0)

    def test_max_abs_difference(self):
        box = MBR([0.0], [10.0])
        assert box.max_abs_difference(0, 2.0) == pytest.approx(8.0)
        assert box.max_abs_difference(0, -5.0) == pytest.approx(15.0)
        assert box.max_abs_difference(0, 20.0) == pytest.approx(20.0)

    def test_bounds_hold_for_random_points(self, rng):
        box = MBR([0.0, 0.0], [1.0, 2.0])
        inside = np.column_stack([rng.uniform(0, 1, 100), rng.uniform(0, 2, 100)])
        for q in rng.uniform(-2, 4, size=(20, 2)):
            for dim in range(2):
                diffs = np.abs(inside[:, dim] - q[dim])
                assert diffs.min() >= box.min_abs_difference(dim, q[dim]) - 1e-12
                assert diffs.max() <= box.max_abs_difference(dim, q[dim]) + 1e-12
