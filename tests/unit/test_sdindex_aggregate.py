"""Unit tests for the SDIndex facade and the subproblem aggregator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import SubproblemAggregator
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from tests.conftest import assert_same_scores, oracle_topk


class TestSDIndexConstruction:
    def test_build_and_basic_query(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        result = index.query(small_4d_dataset[0], k=5)
        assert len(result) == 5
        assert len(index) == len(small_4d_dataset)

    def test_rejects_non_matrix_data(self):
        with pytest.raises(ValueError):
            SDIndex.build(np.zeros(10), repulsive=[0], attractive=[1])

    def test_rejects_overlapping_roles(self, small_4d_dataset):
        with pytest.raises(ValueError):
            SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[1, 2])

    def test_rejects_out_of_range_dimension(self, small_4d_dataset):
        with pytest.raises(ValueError):
            SDIndex.build(small_4d_dataset, repulsive=[0], attractive=[7])

    def test_rejects_empty_roles(self, small_4d_dataset):
        with pytest.raises(ValueError):
            SDIndex.build(small_4d_dataset, repulsive=[], attractive=[])

    def test_accepts_angle_list(self, small_4d_dataset):
        index = SDIndex.build(
            small_4d_dataset, repulsive=[0, 1], attractive=[2, 3], angles=[0, 45, 90]
        )
        assert index.stats().num_angles == 3

    def test_pairing_property(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        assert len(index.pairing.pairs) == 2


class TestSDIndexQueries:
    def test_query_with_sdquery_object(self, small_4d_dataset, rng):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        for _ in range(5):
            query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=6,
                                   alpha=rng.uniform(0.1, 2, 2), beta=rng.uniform(0.1, 2, 2))
            assert_same_scores(index.query(query), oracle_topk(small_4d_dataset, query))

    def test_query_with_raw_point(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        result = index.query([0.5, 0.5, 0.5, 0.5], k=3, alpha=[1.0, 2.0], beta=[0.5, 0.5])
        query = SDQuery.simple([0.5] * 4, [0, 1], [2, 3], k=3, alpha=[1.0, 2.0], beta=[0.5, 0.5])
        assert_same_scores(result, oracle_topk(small_4d_dataset, query))

    def test_raw_point_requires_k(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        with pytest.raises(ValueError):
            index.query([0.5] * 4)

    def test_rejects_mixing_query_object_and_k(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        query = SDQuery.simple([0.5] * 4, [0, 1], [2, 3], k=1)
        with pytest.raises(ValueError):
            index.query(query, k=5)

    def test_rejects_role_mismatch(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        query = SDQuery.simple([0.5] * 4, [0], [1], k=1)
        with pytest.raises(ValueError):
            index.query(query)

    def test_2d_dataset(self, small_2d_dataset, rng):
        index = SDIndex.build(small_2d_dataset, repulsive=[1], attractive=[0])
        for _ in range(5):
            query = SDQuery.simple(rng.random(2), [1], [0], k=4)
            assert_same_scores(index.query(query), oracle_topk(small_2d_dataset, query))

    def test_unpaired_dimensions(self, rng):
        data = rng.random((300, 5))
        index = SDIndex.build(data, repulsive=[0, 1, 2], attractive=[3, 4])
        for _ in range(5):
            query = SDQuery.simple(rng.random(5), [0, 1, 2], [3, 4], k=5)
            assert_same_scores(index.query(query), oracle_topk(data, query))

    def test_point_access(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        assert np.allclose(index.point(3), small_4d_dataset[3])


class TestSDIndexUpdates:
    def test_insert_then_query(self, small_4d_dataset, rng):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        extra = rng.random((30, 4))
        for point in extra:
            index.insert(point)
        full = np.vstack([small_4d_dataset, extra])
        assert len(index) == len(full)
        query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=8)
        assert_same_scores(index.query(query), oracle_topk(full, query))

    def test_delete_then_query(self, small_4d_dataset, rng):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        removed = [0, 5, 17, 100]
        for row in removed:
            index.delete(row)
        remaining = np.delete(small_4d_dataset, removed, axis=0)
        query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=6)
        assert_same_scores(index.query(query), oracle_topk(remaining, query))

    def test_insert_wrong_dimensionality(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        with pytest.raises(ValueError):
            index.insert([1.0, 2.0])

    def test_delete_unknown_row(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        with pytest.raises(KeyError):
            index.delete(99999)

    def test_deleted_row_id_not_reusable(self, small_4d_dataset):
        index = SDIndex.build(small_4d_dataset, repulsive=[0, 1], attractive=[2, 3])
        index.delete(3)
        with pytest.raises((ValueError, KeyError)):
            index.point(3)

    def test_updates_with_leftover_columns(self, rng):
        data = rng.random((200, 3))
        index = SDIndex.build(data, repulsive=[0, 1], attractive=[2])
        index.delete(0)
        new_row = index.insert(rng.random(3))
        assert new_row not in (0,)
        live = np.vstack([data[1:], index.point(new_row)])
        query = SDQuery.simple(rng.random(3), [0, 1], [2], k=4)
        assert_same_scores(index.query(query), oracle_topk(live, query))


class TestAggregatorInternals:
    def test_stats_aggregate_pair_indexes(self, small_4d_dataset):
        aggregator = SubproblemAggregator(small_4d_dataset, [0, 1], [2, 3])
        stats = aggregator.stats()
        assert stats.name == "sd-index"
        assert stats.num_points == len(small_4d_dataset)
        assert stats.memory_bytes > 0

    def test_row_ids_respected(self, rng):
        data = rng.random((50, 4))
        rows = list(range(500, 550))
        aggregator = SubproblemAggregator(data, [0, 1], [2, 3], row_ids=rows)
        query = SDQuery.simple([0.5] * 4, [0, 1], [2, 3], k=3)
        result = aggregator.query(query)
        assert all(500 <= row < 550 for row in result.row_ids)

    def test_rejects_misaligned_row_ids(self, rng):
        with pytest.raises(ValueError):
            SubproblemAggregator(rng.random((10, 4)), [0, 1], [2, 3], row_ids=[1, 2])

    def test_candidate_counters_populated(self, small_4d_dataset):
        aggregator = SubproblemAggregator(small_4d_dataset, [0, 1], [2, 3])
        query = SDQuery.simple([0.5] * 4, [0, 1], [2, 3], k=5)
        result = aggregator.query(query)
        assert result.candidates_examined >= result.full_evaluations >= len(result)
        assert result.full_evaluations < len(small_4d_dataset)
