"""Unit tests for angle grids (repro.core.angles)."""

from __future__ import annotations

import pytest

from repro.core.angles import DEFAULT_ANGLE_DEGREES, AngleGrid
from repro.core.geometry import Angle


class TestConstruction:
    def test_default_grid_matches_paper(self):
        grid = AngleGrid.default()
        assert grid.degrees() == pytest.approx(DEFAULT_ANGLE_DEGREES)
        assert len(grid) == 5

    def test_uniform_grid_spans_quadrant(self):
        grid = AngleGrid.uniform(4)
        degrees = grid.degrees()
        assert degrees[0] == pytest.approx(0.0)
        assert degrees[-1] == pytest.approx(90.0)
        assert len(degrees) == 4

    def test_from_degrees_sorts_and_deduplicates(self):
        grid = AngleGrid.from_degrees([90.0, 0.0, 45.0, 45.0])
        assert grid.degrees() == pytest.approx((0.0, 45.0, 90.0))

    def test_rejects_grid_without_full_span(self):
        with pytest.raises(ValueError):
            AngleGrid.from_degrees([10.0, 80.0])

    def test_rejects_single_angle(self):
        with pytest.raises(ValueError):
            AngleGrid(angles=(Angle.from_degrees(45.0),))

    def test_uniform_rejects_count_below_two(self):
        with pytest.raises(ValueError):
            AngleGrid.uniform(1)


class TestBracketing:
    def test_exact_angle_returns_same_pair(self):
        grid = AngleGrid.default()
        lower, upper = grid.bracket(Angle.from_degrees(45.0))
        assert lower.degrees == pytest.approx(45.0)
        assert upper.degrees == pytest.approx(45.0)

    def test_interior_angle_is_bracketed_by_neighbours(self):
        grid = AngleGrid.default()
        lower, upper = grid.bracket(Angle.from_degrees(30.0))
        assert lower.degrees == pytest.approx(22.5)
        assert upper.degrees == pytest.approx(45.0)

    def test_extreme_angles(self):
        grid = AngleGrid.default()
        lower, upper = grid.bracket(Angle.from_degrees(0.0))
        assert lower.degrees == pytest.approx(0.0) and upper.degrees == pytest.approx(0.0)
        lower, upper = grid.bracket(Angle.from_degrees(90.0))
        assert lower.degrees == pytest.approx(90.0) and upper.degrees == pytest.approx(90.0)


class TestQueryHistory:
    def test_history_grid_keeps_anchors(self):
        grid = AngleGrid.from_query_history([30.0] * 50, count=4)
        degrees = grid.degrees()
        assert degrees[0] == pytest.approx(0.0)
        assert degrees[-1] == pytest.approx(90.0)
        # interior angles concentrate near the observed angle
        assert any(abs(d - 30.0) < 1.0 for d in degrees[1:-1])

    def test_history_grid_with_empty_history_is_uniform(self):
        grid = AngleGrid.from_query_history([], count=5)
        assert grid.degrees() == pytest.approx(AngleGrid.uniform(5).degrees())

    def test_history_quantiles_spread(self):
        history = list(range(0, 91, 1))
        grid = AngleGrid.from_query_history(history, count=5)
        interior = grid.degrees()[1:-1]
        assert interior == pytest.approx((22.5, 45.0, 67.5), abs=1.0)
