"""Focused tests for admission-control timing edges.

The broad admission behavior (per-tenant isolation, in-flight caps, typed
rejections) lives in ``test_serving.py``; this file pins down the token
bucket's *clock* edge cases — refill exactly at the burst boundary, and a
regressing clock, which must neither refund spent tokens nor double-refill
the same interval once the clock catches back up.
"""

from __future__ import annotations

import pytest

from repro.serving.admission import AdmissionController, AdmissionError, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class TestBurstBoundary:
    def test_refill_saturates_exactly_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(4))
        # Exactly burst/rate seconds refills to exactly the burst — not less
        # (no float drift shorting the tenant) and not more.
        clock.advance(2.0)
        assert bucket.tokens == 4.0
        clock.advance(100.0)
        assert bucket.tokens == 4.0

    def test_fractional_tokens_accumulate_across_reads(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        # Two half-refills must add up: polling may observe the fraction but
        # must not round it away.
        clock.advance(0.5)
        assert not bucket.try_acquire()
        assert bucket.tokens == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_acquire()

    def test_acquire_at_the_boundary_is_all_or_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2.0)  # the full burst in one acquire
        assert bucket.tokens == 0.0
        clock.advance(1.0)
        assert not bucket.try_acquire(2.0)  # short by one: nothing taken
        assert bucket.tokens == pytest.approx(1.0)

    def test_seconds_until_spans_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        assert bucket.seconds_until() == pytest.approx(0.25)
        assert bucket.seconds_until(2.0) == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.seconds_until() == 0.0


class TestClockRegression:
    def test_backward_step_does_not_refund_tokens(self):
        clock = FakeClock(now=100.0)
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        clock.advance(-50.0)
        assert bucket.tokens == 0.0
        assert not bucket.try_acquire()

    def test_no_double_refill_when_the_clock_catches_up(self):
        """The regression window must not be credited twice.

        A refill observed at t=100, then a regression to t=90, then recovery
        to t=101 is *one* second of real forward progress — a bucket that
        moved its high-water mark backwards at t=90 would credit eleven.
        """
        clock = FakeClock(now=100.0)
        bucket = TokenBucket(rate=1.0, burst=20.0, clock=clock)
        bucket.try_acquire(20.0)
        clock.advance(-10.0)
        assert bucket.tokens == 0.0  # observes the regressed clock: no refill
        clock.advance(11.0)  # back past the high-water mark by one second
        assert bucket.tokens == pytest.approx(1.0)

    def test_retry_after_stays_finite_and_nonnegative_under_regression(self):
        clock = FakeClock(now=100.0)
        controller = AdmissionController(rate=1.0, burst=1.0, clock=clock)
        controller.admit("t")
        clock.advance(-30.0)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("t")
        assert excinfo.value.reason == "rate"
        assert 0.0 <= excinfo.value.retry_after <= 1.0

    def test_frozen_clock_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1000.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        for _ in range(5):
            assert not bucket.try_acquire()
        assert bucket.tokens == 0.0
