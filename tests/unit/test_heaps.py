"""Unit tests for BoundedMaxHeap."""

from __future__ import annotations

import pytest

from repro.substrates.heaps import BoundedMaxHeap


class TestBoundedMaxHeap:
    def test_keeps_best_k(self):
        heap = BoundedMaxHeap(3)
        for value in [5.0, 1.0, 9.0, 3.0, 7.0]:
            heap.push(value, f"item-{value}")
        assert [score for score, _ in heap.items()] == [9.0, 7.0, 5.0]

    def test_kth_score_is_none_until_full(self):
        heap = BoundedMaxHeap(2)
        assert heap.kth_score() is None
        heap.push(1.0, "a")
        assert heap.kth_score() is None
        heap.push(2.0, "b")
        assert heap.kth_score() == 1.0

    def test_would_accept(self):
        heap = BoundedMaxHeap(2)
        assert heap.would_accept(0.0)
        heap.push(1.0, "a")
        heap.push(2.0, "b")
        assert heap.would_accept(1.5)
        assert not heap.would_accept(1.0)
        assert not heap.would_accept(0.5)

    def test_push_returns_whether_retained(self):
        heap = BoundedMaxHeap(1)
        assert heap.push(1.0, "a")
        assert heap.push(2.0, "b")
        assert not heap.push(0.5, "c")

    def test_items_best_first_with_stable_ties(self):
        heap = BoundedMaxHeap(3)
        heap.push(1.0, "first")
        heap.push(1.0, "second")
        heap.push(1.0, "third")
        assert [item for _, item in heap.items()] == ["first", "second", "third"]

    def test_len_and_is_full(self):
        heap = BoundedMaxHeap(2)
        assert len(heap) == 0 and not heap.is_full
        heap.push(1.0, "a")
        heap.push(2.0, "b")
        assert len(heap) == 2 and heap.is_full

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(0)

    def test_iteration_matches_items(self):
        heap = BoundedMaxHeap(4)
        for value in range(10):
            heap.push(float(value), value)
        assert list(heap) == heap.items()
