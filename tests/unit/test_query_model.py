"""Unit tests for the query model and exact scoring (repro.core.query)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.query import (
    DimensionRole,
    QueryWeights,
    SDQuery,
    normalized_angle,
    sd_score,
    sd_scores,
)


class TestQueryWeights:
    def test_uniform_weights(self):
        weights = QueryWeights.uniform(2, 3)
        assert weights.alpha == (1.0, 1.0)
        assert weights.beta == (1.0, 1.0, 1.0)

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            QueryWeights(alpha=(0.0,), beta=(1.0,))

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            QueryWeights(alpha=(1.0,), beta=(-0.5,))

    def test_rejects_non_finite_weight(self):
        with pytest.raises(ValueError):
            QueryWeights(alpha=(math.inf,), beta=(1.0,))


class TestSDQueryValidation:
    def test_basic_construction(self):
        query = SDQuery.simple([0.5, 0.5], repulsive=[0], attractive=[1], k=3)
        assert query.k == 3
        assert query.repulsive == (0,)
        assert query.attractive == (1,)
        assert query.alpha == (1.0,)
        assert query.beta == (1.0,)

    def test_rejects_dimension_used_twice(self):
        with pytest.raises(ValueError):
            SDQuery.simple([0.0, 0.0], repulsive=[0], attractive=[0])

    def test_rejects_out_of_range_dimension(self):
        with pytest.raises(ValueError):
            SDQuery.simple([0.0, 0.0], repulsive=[2], attractive=[1])

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            SDQuery.simple([0.0, 0.0], repulsive=[0], attractive=[1], k=0)

    def test_rejects_empty_roles(self):
        with pytest.raises(ValueError):
            SDQuery.simple([0.0, 0.0], repulsive=[], attractive=[])

    def test_rejects_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            SDQuery(
                point=(0.0, 0.0, 0.0),
                repulsive=(0, 1),
                attractive=(2,),
                k=1,
                weights=QueryWeights(alpha=(1.0,), beta=(1.0,)),
            )

    def test_rejects_non_finite_query_point(self):
        with pytest.raises(ValueError):
            SDQuery.simple([float("nan"), 0.0], repulsive=[0], attractive=[1])

    def test_scalar_weights_are_broadcast(self):
        query = SDQuery.simple([0.0] * 4, repulsive=[0, 1], attractive=[2, 3], alpha=0.5, beta=2.0)
        assert query.alpha == (0.5, 0.5)
        assert query.beta == (2.0, 2.0)

    def test_roles_and_role_of(self):
        query = SDQuery.simple([0.0] * 3, repulsive=[0], attractive=[2])
        assert query.role_of(0) is DimensionRole.REPULSIVE
        assert query.role_of(2) is DimensionRole.ATTRACTIVE
        assert query.role_of(1) is DimensionRole.IGNORED
        assert query.roles() == {
            0: DimensionRole.REPULSIVE,
            2: DimensionRole.ATTRACTIVE,
        }

    def test_with_k_and_with_weights(self):
        query = SDQuery.simple([0.0, 0.0], repulsive=[0], attractive=[1], k=2)
        assert query.with_k(9).k == 9
        reweighted = query.with_weights(alpha=[3.0], beta=[0.25])
        assert reweighted.alpha == (3.0,)
        assert reweighted.beta == (0.25,)
        # the original is unchanged (SDQuery is immutable)
        assert query.alpha == (1.0,)


class TestDimensionRole:
    def test_signs(self):
        assert DimensionRole.REPULSIVE.sign() == 1
        assert DimensionRole.ATTRACTIVE.sign() == -1
        assert DimensionRole.IGNORED.sign() == 0


class TestScoring:
    def test_paper_example_figure1(self):
        """The introduction's example: SDscore(p1, q1) = 3 and SDscore(p3, q2) = 2."""
        # Phylogeny on x (attractive), habitat on y (repulsive); alpha = beta = 1.
        q1 = SDQuery.simple([1.0, 1.0], repulsive=[1], attractive=[0], k=1)
        p1 = [1.0, 4.0]
        assert sd_score(p1, q1) == pytest.approx(3.0)
        q2 = SDQuery.simple([5.0, 1.0], repulsive=[1], attractive=[0], k=1)
        p3 = [5.0, 3.0]
        assert sd_score(p3, q2) == pytest.approx(2.0)

    def test_score_is_weighted_sum_of_absolute_differences(self):
        query = SDQuery.simple(
            [0.0, 0.0, 0.0], repulsive=[0, 1], attractive=[2], alpha=[2.0, 0.5], beta=[3.0]
        )
        point = [1.0, -4.0, 2.0]
        assert sd_score(point, query) == pytest.approx(2.0 * 1 + 0.5 * 4 - 3.0 * 2)

    def test_score_of_query_itself_is_zero_when_symmetric(self):
        query = SDQuery.simple([0.3, 0.7], repulsive=[0], attractive=[1])
        assert sd_score([0.3, 0.7], query) == pytest.approx(0.0)

    def test_vectorized_scores_match_scalar(self, rng):
        data = rng.random((50, 3))
        query = SDQuery.simple(rng.random(3), repulsive=[0, 2], attractive=[1],
                               alpha=[1.5, 0.7], beta=[2.0])
        vectorized = sd_scores(data, query)
        for i in range(len(data)):
            assert vectorized[i] == pytest.approx(sd_score(data[i], query))

    def test_sd_score_rejects_wrong_shape(self):
        query = SDQuery.simple([0.0, 0.0], repulsive=[0], attractive=[1])
        with pytest.raises(ValueError):
            sd_score([1.0, 2.0, 3.0], query)

    def test_sd_scores_rejects_wrong_shape(self):
        query = SDQuery.simple([0.0, 0.0], repulsive=[0], attractive=[1])
        with pytest.raises(ValueError):
            sd_scores(np.zeros((5, 3)), query)


class TestNormalizedAngle:
    def test_equal_weights_is_45_degrees(self):
        assert normalized_angle(1.0, 1.0) == pytest.approx(math.pi / 4)

    def test_zero_beta_is_zero(self):
        assert normalized_angle(2.0, 0.0) == pytest.approx(0.0)

    def test_zero_alpha_is_90_degrees(self):
        assert normalized_angle(0.0, 2.0) == pytest.approx(math.pi / 2)

    def test_rejects_both_zero(self):
        with pytest.raises(ValueError):
            normalized_angle(0.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalized_angle(-1.0, 1.0)
