"""Unit tests for dimension pairing (repro.core.pairing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pairing import PAIRING_STRATEGIES, DimensionPairing, pair_dimensions


class TestOrderPairing:
    def test_equal_cardinalities_pair_everything(self):
        pairing = pair_dimensions([0, 1, 2], [3, 4, 5], strategy="order")
        assert pairing.pairs == ((0, 3), (1, 4), (2, 5))
        assert pairing.leftover_repulsive == ()
        assert pairing.leftover_attractive == ()
        assert pairing.num_subproblems == 3

    def test_more_repulsive_than_attractive(self):
        pairing = pair_dimensions([0, 1, 2], [3], strategy="order")
        assert pairing.pairs == ((0, 3),)
        assert pairing.leftover_repulsive == (1, 2)
        assert pairing.leftover_attractive == ()
        assert pairing.num_subproblems == 3

    def test_more_attractive_than_repulsive(self):
        pairing = pair_dimensions([5], [1, 2, 3], strategy="order")
        assert pairing.pairs == ((5, 1),)
        assert pairing.leftover_attractive == (2, 3)

    def test_no_attractive_dimensions(self):
        pairing = pair_dimensions([0, 1], [], strategy="order")
        assert pairing.pairs == ()
        assert pairing.leftover_repulsive == (0, 1)

    def test_describe_mentions_every_subproblem(self):
        pairing = pair_dimensions([0, 1], [2], strategy="order")
        description = pairing.describe()
        assert "pair(y=d0, x=d2)" in description
        assert "1d-repulsive(d1)" in description


class TestDataDrivenPairings:
    def test_spread_pairs_widest_dimensions_together(self, rng):
        data = np.zeros((500, 4))
        data[:, 0] = rng.random(500) * 100.0  # widest repulsive
        data[:, 1] = rng.random(500)
        data[:, 2] = rng.random(500)
        data[:, 3] = rng.random(500) * 50.0  # widest attractive
        pairing = pair_dimensions([0, 1], [2, 3], strategy="spread", data=data)
        assert (0, 3) in pairing.pairs
        assert (1, 2) in pairing.pairs

    def test_correlation_pairs_correlated_dimensions_together(self, rng):
        base = rng.random(800)
        data = np.column_stack([
            base + rng.normal(0, 0.01, 800),        # dim 0 (repulsive), tracks base
            rng.random(800),                          # dim 1 (repulsive), noise
            rng.random(800),                          # dim 2 (attractive), noise
            base + rng.normal(0, 0.01, 800),        # dim 3 (attractive), tracks base
        ])
        pairing = pair_dimensions([0, 1], [2, 3], strategy="correlation", data=data)
        assert (0, 3) in pairing.pairs

    def test_data_driven_strategies_require_data(self):
        with pytest.raises(ValueError):
            pair_dimensions([0], [1], strategy="spread")
        with pytest.raises(ValueError):
            pair_dimensions([0], [1], strategy="correlation")

    def test_constant_column_correlation_is_handled(self):
        data = np.ones((100, 2))
        pairing = pair_dimensions([0], [1], strategy="correlation", data=data)
        assert pairing.pairs == ((0, 1),)


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            pair_dimensions([0], [1], strategy="random")

    def test_strategies_constant_lists_known_strategies(self):
        assert set(PAIRING_STRATEGIES) == {"order", "spread", "correlation"}

    def test_every_strategy_produces_a_complete_partition(self, rng):
        data = rng.random((200, 6))
        for strategy in PAIRING_STRATEGIES:
            pairing = pair_dimensions([0, 1, 2], [3, 4, 5], strategy=strategy, data=data)
            covered = set()
            for r, a in pairing.pairs:
                covered.add(r)
                covered.add(a)
            covered |= set(pairing.leftover_repulsive) | set(pairing.leftover_attractive)
            assert covered == {0, 1, 2, 3, 4, 5}
            assert len(pairing.pairs) == 3
