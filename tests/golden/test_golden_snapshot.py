"""Golden snapshot-format regression: format v1 must load forever.

The committed fixture (``tests/fixtures/golden_snapshot_v1/``) is a small
durable SD-Index — checkpointed snapshot plus a WAL tail — written at format
version 1, with the exact expected answers stored as ``float.hex`` strings.
Every future build must recover it bit-identically; a failure here is a
backward-compatibility break, never something to fix by regenerating the
fixture (see ``tests/fixtures/make_golden_snapshot.py``).

Also locks the typed-error contract: unknown format versions and checksum
mismatches must raise :class:`SnapshotFormatError`, not load garbage.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core.persistence import DurableIndex, SnapshotFormatError

FIXTURE = Path(__file__).resolve().parents[1] / "fixtures" / "golden_snapshot_v1"


@pytest.fixture
def store(tmp_path):
    """A writable copy (recovery appends to the WAL; the fixture is read-only)."""
    target = tmp_path / "store"
    shutil.copytree(FIXTURE / "store", target)
    return target


@pytest.fixture(scope="module")
def expected():
    with open(FIXTURE / "expected.json", "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("mmap", [False, True])
def test_golden_v1_recovers_bit_identically(store, expected, mmap):
    recovered = DurableIndex.recover(store, mmap=mmap)
    assert recovered.last_recovery["extra"] == {"fixture": "golden-v1"}
    assert recovered.last_recovery["replayed"] == 6  # the committed WAL tail
    queries = np.asarray(expected["queries"], dtype=float)
    answers = recovered.batch_query(queries, k=expected["k"])
    got = [
        [[m.row_id, float(m.score).hex()] for m in result.matches]
        for result in answers.results
    ]
    assert got == expected["results"]
    recovered.close()


def test_golden_v1_unknown_version_rejected(store):
    current = (store / "CURRENT").read_text().strip()
    manifest_path = store / current / "MANIFEST.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = 2
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="version"):
        DurableIndex.recover(store)


def test_golden_v1_checksum_mismatch_rejected(store):
    current = (store / "CURRENT").read_text().strip()
    target = store / current / "arrays" / "matrix.npy"
    blob = bytearray(target.read_bytes())
    blob[-3] ^= 0x10
    target.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="checksum"):
        DurableIndex.recover(store)
