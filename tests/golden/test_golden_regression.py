"""Golden regression tests: frozen top-k answers for three seeded datasets.

The fixtures under ``tests/fixtures/`` snapshot the exact row ids and scores of
the sequential-scan oracle for seeded workloads over the uniform, clustered and
anti-correlated generators.  The tier-1 test re-runs the single-query SD-Index
path, the batched SD-Index path and the oracle against those snapshots, so any
scoring drift — a changed term order, a broken bound, a generator change — in
either execution path fails loudly.

Regenerate (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/golden/test_golden_regression.py --regenerate
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.data.generators import generate_dataset
from repro.workloads.registry import build_workload
from repro.workloads.workload import make_batch_workload

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

#: Score drift tolerance: answers are float64-deterministic, so anything above
#: exact-roundtrip noise is a real regression.
SCORE_TOLERANCE = 1e-12

#: The frozen scenarios: distribution, dataset seed, dimension roles.  The
#: roles deliberately cover all three execution shapes of the batch engine
#: (two 2D pairs, pair + repulsive columns, pair + attractive columns).
SCENARIOS = {
    "uniform": {
        "distribution": "uniform",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 201,
        "repulsive": (0, 1),
        "attractive": (2, 3),
        "workload_seed": 301,
    },
    "clustered": {
        "distribution": "clustered",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 202,
        "repulsive": (0, 1, 2),
        "attractive": (3,),
        "workload_seed": 302,
    },
    "anticorrelated": {
        "distribution": "anticorrelated",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 203,
        "repulsive": (0,),
        "attractive": (1, 2, 3),
        "workload_seed": 303,
    },
}

NUM_QUERIES = 10
K_CHOICES = (1, 3, 5, 8)

#: The sharded-serving snapshot: the registered ``sharded_serving`` workload
#: (k menu {1, 10}) over seeded uniform data, asserted against the sharded
#: engine at 2 and 4 shards with both partitioners.
SHARDED_SCENARIO = {
    "distribution": "uniform",
    "num_points": 600,
    "num_dims": 4,
    "data_seed": 401,
    "repulsive": (0, 1),
    "attractive": (2, 3),
    "workload_seed": 402,
}
SHARDED_NUM_QUERIES = 12
SHARD_COUNTS = (2, 4)

#: The concurrent-serving snapshot: the registered ``concurrent_serving``
#: workload's deterministic update script applied serially over seeded
#: uniform data, with the read batch's oracle answers frozen at evenly spaced
#: checkpoints.  The test replays the script through the flat and sharded
#: engines (snapshot concurrency mode) and asserts bit-identical answers at
#: every checkpoint — the single-threaded anchor of the multi-threaded
#: stress harness.
CONCURRENT_SCENARIO = {
    "distribution": "uniform",
    "num_points": 400,
    "num_dims": 4,
    "data_seed": 501,
    "repulsive": (0, 1),
    "attractive": (2, 3),
    "workload_seed": 502,
}
CONCURRENT_NUM_QUERIES = 10
CONCURRENT_NUM_UPDATES = 120
CONCURRENT_CHECKPOINTS = (0, 40, 80, 120)

#: The write-heavy snapshot: the registered ``write_heavy`` workload (an
#: update-dominated stream against a small read batch) frozen at checkpoints
#: chosen to land mid-layering.  The replay drives the LSM engine with a tiny
#: flush threshold, so the frozen answers pin the delta + levels merge path
#: — flushes, tier merges, tombstone collection — against the oracle, next
#: to the ``compaction="legacy"`` engine on the same script.
WRITE_HEAVY_SCENARIO = {
    "distribution": "uniform",
    "num_points": 300,
    "num_dims": 4,
    "data_seed": 601,
    "repulsive": (0, 1),
    "attractive": (2, 3),
    "workload_seed": 602,
}
WRITE_HEAVY_NUM_QUERIES = 8
WRITE_HEAVY_NUM_UPDATES = 400
WRITE_HEAVY_CHECKPOINTS = (0, 90, 210, 400)
WRITE_HEAVY_LSM_OPTIONS = dict(flush_rows=16, fanout=2, background_compaction=False)


def _sharded_inputs():
    config = SHARDED_SCENARIO
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = build_workload(
        "sharded_serving",
        config["repulsive"],
        config["attractive"],
        num_queries=SHARDED_NUM_QUERIES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _concurrent_inputs():
    config = CONCURRENT_SCENARIO
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = build_workload(
        "concurrent_serving",
        config["repulsive"],
        config["attractive"],
        num_queries=CONCURRENT_NUM_QUERIES,
        num_updates=CONCURRENT_NUM_UPDATES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _concurrent_expected(data, workload, config=None, checkpoints=None):
    """Oracle answers of the read batch at every update-script checkpoint."""
    config = CONCURRENT_SCENARIO if config is None else config
    checkpoints = CONCURRENT_CHECKPOINTS if checkpoints is None else checkpoints
    store = {row: data[row] for row in range(len(data))}
    script = workload.script(sorted(store))
    expected = []
    applied = 0
    for checkpoint in checkpoints:
        while applied < checkpoint:
            op, row, point = script[applied]
            if op == "insert":
                store[row] = np.asarray(point, dtype=float)
            else:
                del store[row]
            applied += 1
        rows = sorted(store)
        oracle = SequentialScan(
            np.asarray([store[row] for row in rows], dtype=float),
            config["repulsive"],
            config["attractive"],
            row_ids=rows,
        )
        batch = oracle.batch_query(workload.reads)
        expected.append(
            {
                "checkpoint": checkpoint,
                "population": len(rows),
                "results": [
                    {"row_ids": result.row_ids, "scores": result.scores}
                    for result in batch
                ],
            }
        )
    return expected


def _write_heavy_inputs():
    config = WRITE_HEAVY_SCENARIO
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = build_workload(
        "write_heavy",
        config["repulsive"],
        config["attractive"],
        num_queries=WRITE_HEAVY_NUM_QUERIES,
        num_updates=WRITE_HEAVY_NUM_UPDATES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _scenario_inputs(config):
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = make_batch_workload(
        config["repulsive"],
        config["attractive"],
        num_queries=NUM_QUERIES,
        k=K_CHOICES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _fixture_path(name: str) -> Path:
    return FIXTURES / f"golden_topk_{name}.json"


def _compute_expected(config):
    data, workload = _scenario_inputs(config)
    oracle = SequentialScan(data, config["repulsive"], config["attractive"])
    batch = oracle.batch_query(workload)
    return [
        {"row_ids": result.row_ids, "scores": result.scores} for result in batch
    ]


def regenerate() -> None:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    for name, config in SCENARIOS.items():
        payload = {
            "scenario": {key: list(value) if isinstance(value, tuple) else value
                         for key, value in config.items()},
            "num_queries": NUM_QUERIES,
            "k_choices": list(K_CHOICES),
            "expected": _compute_expected(config),
        }
        path = _fixture_path(name)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    data, workload = _sharded_inputs()
    oracle = SequentialScan(
        data, SHARDED_SCENARIO["repulsive"], SHARDED_SCENARIO["attractive"]
    )
    payload = {
        "scenario": {key: list(value) if isinstance(value, tuple) else value
                     for key, value in SHARDED_SCENARIO.items()},
        "num_queries": SHARDED_NUM_QUERIES,
        "k_choices": [1, 10],
        "shard_counts": list(SHARD_COUNTS),
        "expected": [
            {"row_ids": result.row_ids, "scores": result.scores}
            for result in oracle.batch_query(workload)
        ],
    }
    path = _fixture_path("sharded_serving")
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    data, workload = _concurrent_inputs()
    payload = {
        "scenario": {key: list(value) if isinstance(value, tuple) else value
                     for key, value in CONCURRENT_SCENARIO.items()},
        "num_queries": CONCURRENT_NUM_QUERIES,
        "num_updates": CONCURRENT_NUM_UPDATES,
        "checkpoints": list(CONCURRENT_CHECKPOINTS),
        "expected": _concurrent_expected(data, workload),
    }
    path = _fixture_path("concurrent_serving")
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    data, workload = _write_heavy_inputs()
    payload = {
        "scenario": {key: list(value) if isinstance(value, tuple) else value
                     for key, value in WRITE_HEAVY_SCENARIO.items()},
        "num_queries": WRITE_HEAVY_NUM_QUERIES,
        "num_updates": WRITE_HEAVY_NUM_UPDATES,
        "checkpoints": list(WRITE_HEAVY_CHECKPOINTS),
        "expected": _concurrent_expected(
            data, workload, WRITE_HEAVY_SCENARIO, WRITE_HEAVY_CHECKPOINTS
        ),
    }
    path = _fixture_path("write_heavy")
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def _assert_matches_fixture(result, expected, context: str) -> None:
    assert result.row_ids == expected["row_ids"], (
        f"{context}: row ids drifted: {result.row_ids} != {expected['row_ids']}"
    )
    assert len(result.scores) == len(expected["scores"])
    for mine, frozen in zip(result.scores, expected["scores"]):
        assert math.isfinite(mine)
        assert abs(mine - frozen) <= SCORE_TOLERANCE, (
            f"{context}: score drifted: {mine!r} != {frozen!r}"
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestGoldenTopK:
    def _load(self, name):
        path = _fixture_path(name)
        payload = json.loads(path.read_text())
        config = SCENARIOS[name]
        data, workload = _scenario_inputs(config)
        return config, data, workload, payload["expected"]

    def test_oracle_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        batch = SequentialScan(
            data, config["repulsive"], config["attractive"]
        ).batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"{name}/oracle q{j}")

    def test_single_query_path_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        index = SDIndex.build(
            data, repulsive=config["repulsive"], attractive=config["attractive"]
        )
        for j, query in enumerate(workload.queries()):
            result = index.query(query)
            _assert_matches_fixture(result, expected[j], f"{name}/single q{j}")

    def test_batch_path_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        index = SDIndex.build(
            data, repulsive=config["repulsive"], attractive=config["attractive"]
        )
        batch = index.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"{name}/batch q{j}")


class TestGoldenShardedServing:
    """Frozen answers of the ``sharded_serving`` workload (k in {1, 10})."""

    def _load(self):
        payload = json.loads(_fixture_path("sharded_serving").read_text())
        data, workload = _sharded_inputs()
        return data, workload, payload["expected"]

    def test_workload_uses_the_acceptance_k_menu(self):
        _data, workload, _expected = self._load()
        assert set(int(k) for k in workload.ks) <= {1, 10}
        assert {1, 10} <= set(int(k) for k in workload.ks)

    def test_oracle_matches_fixture(self):
        data, workload, expected = self._load()
        batch = SequentialScan(
            data, SHARDED_SCENARIO["repulsive"], SHARDED_SCENARIO["attractive"]
        ).batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"sharded/oracle q{j}")

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_sharded_engine_matches_fixture(self, num_shards, partitioner):
        data, workload, expected = self._load()
        engine = ShardedIndex(
            data,
            repulsive=SHARDED_SCENARIO["repulsive"],
            attractive=SHARDED_SCENARIO["attractive"],
            num_shards=num_shards,
            partitioner=partitioner,
        )
        batch = engine.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(
                result, expected[j],
                f"sharded/{partitioner}/{num_shards} q{j}",
            )
        engine.close()

    def test_flat_engine_matches_fixture(self):
        data, workload, expected = self._load()
        index = SDIndex.build(
            data,
            repulsive=SHARDED_SCENARIO["repulsive"],
            attractive=SHARDED_SCENARIO["attractive"],
        )
        batch = index.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"sharded/flat q{j}")


class TestGoldenConcurrentServing:
    """Frozen checkpoint answers of the ``concurrent_serving`` update script."""

    def _load(self):
        payload = json.loads(_fixture_path("concurrent_serving").read_text())
        data, workload = _concurrent_inputs()
        return data, workload, payload

    def test_script_is_deterministic(self):
        data, workload, payload = self._load()
        first = workload.script(range(len(data)))
        second = workload.script(range(len(data)))
        assert [(op, row) for op, row, _ in first] == [
            (op, row) for op, row, _ in second
        ]
        assert len(first) == payload["num_updates"]
        deletes = sum(1 for op, _, _ in first if op == "delete")
        assert 0 < deletes < len(first)

    def test_oracle_matches_fixture(self):
        data, workload, payload = self._load()
        expected = _concurrent_expected(data, workload)
        assert len(expected) == len(payload["expected"])
        for computed, frozen in zip(expected, payload["expected"]):
            assert computed["checkpoint"] == frozen["checkpoint"]
            assert computed["population"] == frozen["population"]
            for mine, theirs in zip(computed["results"], frozen["results"]):
                assert mine["row_ids"] == theirs["row_ids"]
                for a, b in zip(mine["scores"], theirs["scores"]):
                    assert abs(a - b) <= SCORE_TOLERANCE

    def _replay(self, engine_factory, label, close=False):
        config = CONCURRENT_SCENARIO
        data, workload, payload = self._load()
        engine = engine_factory(data)
        script = workload.script(range(len(data)))
        applied = 0
        try:
            for frozen in payload["expected"]:
                while applied < frozen["checkpoint"]:
                    op, row, point = script[applied]
                    if op == "insert":
                        engine.insert(point, row_id=row)
                    else:
                        engine.delete(row)
                    applied += 1
                # Serve the read batch through a pinned snapshot, exactly as a
                # concurrent reader would.
                with engine.snapshot() as snap:
                    assert len(snap) == frozen["population"]
                    batch = snap.batch_query(workload.reads)
                for j, result in enumerate(batch):
                    _assert_matches_fixture(
                        result,
                        frozen["results"][j],
                        f"concurrent/{label}@{frozen['checkpoint']} q{j}",
                    )
        finally:
            if close:
                engine.close()

    def test_flat_engine_matches_fixture(self):
        config = CONCURRENT_SCENARIO
        self._replay(
            lambda data: SDIndex.build(
                data,
                repulsive=config["repulsive"],
                attractive=config["attractive"],
            ),
            "flat",
        )

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_engine_matches_fixture(self, num_shards):
        config = CONCURRENT_SCENARIO
        self._replay(
            lambda data: ShardedIndex(
                data,
                repulsive=config["repulsive"],
                attractive=config["attractive"],
                num_shards=num_shards,
                partitioner="range" if num_shards == 2 else "hash",
            ),
            f"sharded{num_shards}",
            close=True,
        )


class TestGoldenWriteHeavy:
    """Frozen checkpoint answers of the ``write_heavy`` update script.

    The LSM replay uses a tiny flush threshold so every checkpoint lands on
    a genuinely layered world — the frozen answers pin the delta + levels
    merge read path, not just the single-level fast path — and the legacy
    engine replays the identical script, anchoring both maintenance modes
    to the same oracle.
    """

    def _load(self):
        payload = json.loads(_fixture_path("write_heavy").read_text())
        data, workload = _write_heavy_inputs()
        return data, workload, payload

    def test_script_is_update_dominated(self):
        data, workload, payload = self._load()
        script = workload.script(range(len(data)))
        assert len(script) == payload["num_updates"]
        assert len(script) > 10 * len(workload.reads.points)

    def test_oracle_matches_fixture(self):
        data, workload, payload = self._load()
        expected = _concurrent_expected(
            data, workload, WRITE_HEAVY_SCENARIO, WRITE_HEAVY_CHECKPOINTS
        )
        assert len(expected) == len(payload["expected"])
        for computed, frozen in zip(expected, payload["expected"]):
            assert computed["checkpoint"] == frozen["checkpoint"]
            assert computed["population"] == frozen["population"]
            for mine, theirs in zip(computed["results"], frozen["results"]):
                assert mine["row_ids"] == theirs["row_ids"]
                for a, b in zip(mine["scores"], theirs["scores"]):
                    assert abs(a - b) <= SCORE_TOLERANCE

    def _replay(self, engine_factory, label, close=False):
        data, workload, payload = self._load()
        engine = engine_factory(data)
        script = workload.script(range(len(data)))
        applied = 0
        try:
            for frozen in payload["expected"]:
                while applied < frozen["checkpoint"]:
                    op, row, point = script[applied]
                    if op == "insert":
                        engine.insert(point, row_id=row)
                    else:
                        engine.delete(row)
                    applied += 1
                with engine.snapshot() as snap:
                    assert len(snap) == frozen["population"]
                    batch = snap.batch_query(workload.reads)
                for j, result in enumerate(batch):
                    _assert_matches_fixture(
                        result,
                        frozen["results"][j],
                        f"write_heavy/{label}@{frozen['checkpoint']} q{j}",
                    )
        finally:
            if close:
                engine.close()
        return engine

    def test_lsm_engine_matches_fixture_and_actually_layers(self):
        config = WRITE_HEAVY_SCENARIO
        engine = self._replay(
            lambda data: SDIndex.build(
                data,
                repulsive=config["repulsive"],
                attractive=config["attractive"],
                **WRITE_HEAVY_LSM_OPTIONS,
            ),
            "lsm",
        )
        session = engine._aggregator.serving_session()
        # The scenario exercised real maintenance, not the fast path: the
        # stream drove flushes and merges, and never a stop-the-world rebuild.
        assert session.flushes > 0
        assert session.compactions > 0
        assert session.reflattens == 0

    def test_legacy_engine_matches_fixture(self):
        config = WRITE_HEAVY_SCENARIO
        self._replay(
            lambda data: SDIndex.build(
                data,
                repulsive=config["repulsive"],
                attractive=config["attractive"],
                compaction="legacy",
            ),
            "legacy",
        )

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_lsm_engine_matches_fixture(self, num_shards):
        config = WRITE_HEAVY_SCENARIO
        self._replay(
            lambda data: ShardedIndex(
                data,
                repulsive=config["repulsive"],
                attractive=config["attractive"],
                num_shards=num_shards,
                partitioner="range" if num_shards == 2 else "hash",
                **WRITE_HEAVY_LSM_OPTIONS,
            ),
            f"sharded{num_shards}",
            close=True,
        )


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
