"""Golden regression tests: frozen top-k answers for three seeded datasets.

The fixtures under ``tests/fixtures/`` snapshot the exact row ids and scores of
the sequential-scan oracle for seeded workloads over the uniform, clustered and
anti-correlated generators.  The tier-1 test re-runs the single-query SD-Index
path, the batched SD-Index path and the oracle against those snapshots, so any
scoring drift — a changed term order, a broken bound, a generator change — in
either execution path fails loudly.

Regenerate (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/golden/test_golden_regression.py --regenerate
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.data.generators import generate_dataset
from repro.workloads.workload import make_batch_workload

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

#: Score drift tolerance: answers are float64-deterministic, so anything above
#: exact-roundtrip noise is a real regression.
SCORE_TOLERANCE = 1e-12

#: The frozen scenarios: distribution, dataset seed, dimension roles.  The
#: roles deliberately cover all three execution shapes of the batch engine
#: (two 2D pairs, pair + repulsive columns, pair + attractive columns).
SCENARIOS = {
    "uniform": {
        "distribution": "uniform",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 201,
        "repulsive": (0, 1),
        "attractive": (2, 3),
        "workload_seed": 301,
    },
    "clustered": {
        "distribution": "clustered",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 202,
        "repulsive": (0, 1, 2),
        "attractive": (3,),
        "workload_seed": 302,
    },
    "anticorrelated": {
        "distribution": "anticorrelated",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 203,
        "repulsive": (0,),
        "attractive": (1, 2, 3),
        "workload_seed": 303,
    },
}

NUM_QUERIES = 10
K_CHOICES = (1, 3, 5, 8)


def _scenario_inputs(config):
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = make_batch_workload(
        config["repulsive"],
        config["attractive"],
        num_queries=NUM_QUERIES,
        k=K_CHOICES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _fixture_path(name: str) -> Path:
    return FIXTURES / f"golden_topk_{name}.json"


def _compute_expected(config):
    data, workload = _scenario_inputs(config)
    oracle = SequentialScan(data, config["repulsive"], config["attractive"])
    batch = oracle.batch_query(workload)
    return [
        {"row_ids": result.row_ids, "scores": result.scores} for result in batch
    ]


def regenerate() -> None:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    for name, config in SCENARIOS.items():
        payload = {
            "scenario": {key: list(value) if isinstance(value, tuple) else value
                         for key, value in config.items()},
            "num_queries": NUM_QUERIES,
            "k_choices": list(K_CHOICES),
            "expected": _compute_expected(config),
        }
        path = _fixture_path(name)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")


def _assert_matches_fixture(result, expected, context: str) -> None:
    assert result.row_ids == expected["row_ids"], (
        f"{context}: row ids drifted: {result.row_ids} != {expected['row_ids']}"
    )
    assert len(result.scores) == len(expected["scores"])
    for mine, frozen in zip(result.scores, expected["scores"]):
        assert math.isfinite(mine)
        assert abs(mine - frozen) <= SCORE_TOLERANCE, (
            f"{context}: score drifted: {mine!r} != {frozen!r}"
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestGoldenTopK:
    def _load(self, name):
        path = _fixture_path(name)
        payload = json.loads(path.read_text())
        config = SCENARIOS[name]
        data, workload = _scenario_inputs(config)
        return config, data, workload, payload["expected"]

    def test_oracle_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        batch = SequentialScan(
            data, config["repulsive"], config["attractive"]
        ).batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"{name}/oracle q{j}")

    def test_single_query_path_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        index = SDIndex.build(
            data, repulsive=config["repulsive"], attractive=config["attractive"]
        )
        for j, query in enumerate(workload.queries()):
            result = index.query(query)
            _assert_matches_fixture(result, expected[j], f"{name}/single q{j}")

    def test_batch_path_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        index = SDIndex.build(
            data, repulsive=config["repulsive"], attractive=config["attractive"]
        )
        batch = index.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"{name}/batch q{j}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
