"""Golden regression tests: frozen top-k answers for three seeded datasets.

The fixtures under ``tests/fixtures/`` snapshot the exact row ids and scores of
the sequential-scan oracle for seeded workloads over the uniform, clustered and
anti-correlated generators.  The tier-1 test re-runs the single-query SD-Index
path, the batched SD-Index path and the oracle against those snapshots, so any
scoring drift — a changed term order, a broken bound, a generator change — in
either execution path fails loudly.

Regenerate (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/golden/test_golden_regression.py --regenerate
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.data.generators import generate_dataset
from repro.workloads.registry import build_workload
from repro.workloads.workload import make_batch_workload

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

#: Score drift tolerance: answers are float64-deterministic, so anything above
#: exact-roundtrip noise is a real regression.
SCORE_TOLERANCE = 1e-12

#: The frozen scenarios: distribution, dataset seed, dimension roles.  The
#: roles deliberately cover all three execution shapes of the batch engine
#: (two 2D pairs, pair + repulsive columns, pair + attractive columns).
SCENARIOS = {
    "uniform": {
        "distribution": "uniform",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 201,
        "repulsive": (0, 1),
        "attractive": (2, 3),
        "workload_seed": 301,
    },
    "clustered": {
        "distribution": "clustered",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 202,
        "repulsive": (0, 1, 2),
        "attractive": (3,),
        "workload_seed": 302,
    },
    "anticorrelated": {
        "distribution": "anticorrelated",
        "num_points": 500,
        "num_dims": 4,
        "data_seed": 203,
        "repulsive": (0,),
        "attractive": (1, 2, 3),
        "workload_seed": 303,
    },
}

NUM_QUERIES = 10
K_CHOICES = (1, 3, 5, 8)

#: The sharded-serving snapshot: the registered ``sharded_serving`` workload
#: (k menu {1, 10}) over seeded uniform data, asserted against the sharded
#: engine at 2 and 4 shards with both partitioners.
SHARDED_SCENARIO = {
    "distribution": "uniform",
    "num_points": 600,
    "num_dims": 4,
    "data_seed": 401,
    "repulsive": (0, 1),
    "attractive": (2, 3),
    "workload_seed": 402,
}
SHARDED_NUM_QUERIES = 12
SHARD_COUNTS = (2, 4)


def _sharded_inputs():
    config = SHARDED_SCENARIO
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = build_workload(
        "sharded_serving",
        config["repulsive"],
        config["attractive"],
        num_queries=SHARDED_NUM_QUERIES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _scenario_inputs(config):
    data = generate_dataset(
        config["distribution"],
        config["num_points"],
        config["num_dims"],
        seed=config["data_seed"],
    ).matrix
    workload = make_batch_workload(
        config["repulsive"],
        config["attractive"],
        num_queries=NUM_QUERIES,
        k=K_CHOICES,
        num_dims=config["num_dims"],
        seed=config["workload_seed"],
    )
    return data, workload


def _fixture_path(name: str) -> Path:
    return FIXTURES / f"golden_topk_{name}.json"


def _compute_expected(config):
    data, workload = _scenario_inputs(config)
    oracle = SequentialScan(data, config["repulsive"], config["attractive"])
    batch = oracle.batch_query(workload)
    return [
        {"row_ids": result.row_ids, "scores": result.scores} for result in batch
    ]


def regenerate() -> None:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    for name, config in SCENARIOS.items():
        payload = {
            "scenario": {key: list(value) if isinstance(value, tuple) else value
                         for key, value in config.items()},
            "num_queries": NUM_QUERIES,
            "k_choices": list(K_CHOICES),
            "expected": _compute_expected(config),
        }
        path = _fixture_path(name)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    data, workload = _sharded_inputs()
    oracle = SequentialScan(
        data, SHARDED_SCENARIO["repulsive"], SHARDED_SCENARIO["attractive"]
    )
    payload = {
        "scenario": {key: list(value) if isinstance(value, tuple) else value
                     for key, value in SHARDED_SCENARIO.items()},
        "num_queries": SHARDED_NUM_QUERIES,
        "k_choices": [1, 10],
        "shard_counts": list(SHARD_COUNTS),
        "expected": [
            {"row_ids": result.row_ids, "scores": result.scores}
            for result in oracle.batch_query(workload)
        ],
    }
    path = _fixture_path("sharded_serving")
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def _assert_matches_fixture(result, expected, context: str) -> None:
    assert result.row_ids == expected["row_ids"], (
        f"{context}: row ids drifted: {result.row_ids} != {expected['row_ids']}"
    )
    assert len(result.scores) == len(expected["scores"])
    for mine, frozen in zip(result.scores, expected["scores"]):
        assert math.isfinite(mine)
        assert abs(mine - frozen) <= SCORE_TOLERANCE, (
            f"{context}: score drifted: {mine!r} != {frozen!r}"
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestGoldenTopK:
    def _load(self, name):
        path = _fixture_path(name)
        payload = json.loads(path.read_text())
        config = SCENARIOS[name]
        data, workload = _scenario_inputs(config)
        return config, data, workload, payload["expected"]

    def test_oracle_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        batch = SequentialScan(
            data, config["repulsive"], config["attractive"]
        ).batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"{name}/oracle q{j}")

    def test_single_query_path_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        index = SDIndex.build(
            data, repulsive=config["repulsive"], attractive=config["attractive"]
        )
        for j, query in enumerate(workload.queries()):
            result = index.query(query)
            _assert_matches_fixture(result, expected[j], f"{name}/single q{j}")

    def test_batch_path_matches_fixture(self, name):
        config, data, workload, expected = self._load(name)
        index = SDIndex.build(
            data, repulsive=config["repulsive"], attractive=config["attractive"]
        )
        batch = index.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"{name}/batch q{j}")


class TestGoldenShardedServing:
    """Frozen answers of the ``sharded_serving`` workload (k in {1, 10})."""

    def _load(self):
        payload = json.loads(_fixture_path("sharded_serving").read_text())
        data, workload = _sharded_inputs()
        return data, workload, payload["expected"]

    def test_workload_uses_the_acceptance_k_menu(self):
        _data, workload, _expected = self._load()
        assert set(int(k) for k in workload.ks) <= {1, 10}
        assert {1, 10} <= set(int(k) for k in workload.ks)

    def test_oracle_matches_fixture(self):
        data, workload, expected = self._load()
        batch = SequentialScan(
            data, SHARDED_SCENARIO["repulsive"], SHARDED_SCENARIO["attractive"]
        ).batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"sharded/oracle q{j}")

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_sharded_engine_matches_fixture(self, num_shards, partitioner):
        data, workload, expected = self._load()
        engine = ShardedIndex(
            data,
            repulsive=SHARDED_SCENARIO["repulsive"],
            attractive=SHARDED_SCENARIO["attractive"],
            num_shards=num_shards,
            partitioner=partitioner,
        )
        batch = engine.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(
                result, expected[j],
                f"sharded/{partitioner}/{num_shards} q{j}",
            )
        engine.close()

    def test_flat_engine_matches_fixture(self):
        data, workload, expected = self._load()
        index = SDIndex.build(
            data,
            repulsive=SHARDED_SCENARIO["repulsive"],
            attractive=SHARDED_SCENARIO["attractive"],
        )
        batch = index.batch_query(workload)
        for j, result in enumerate(batch):
            _assert_matches_fixture(result, expected[j], f"sharded/flat q{j}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
